// Package lsu implements the load-store unit of the SRV microarchitecture:
// a load queue (LQ), store-address queue (SAQ) and store-data queue (SDQ)
// with partial store-to-load forwarding (Witt), augmented with the SRV
// horizontal disambiguation logic of paper §III-B and §IV. Inside an SRV
// region, entries are keyed by (region instance, SRV-id, lane) and reused
// across replays; speculative store data stays buffered until the region
// commits, when the sequentially youngest store to each byte is written
// back (WAW resolution).
//
// The implementation is organised for the simulator's hot path: live
// entries sit on an intrusive list in allocation order (the order the old
// slice preserved), removed entries recycle through a free list so steady
// state allocates nothing, a per-cacheline index narrows every candidate
// search to the lines an access touches, and the CAM/disambiguation
// statistics — which model a hardware CAM that compares against every
// entry — are maintained arithmetically from live-entry counters so the
// index never changes what Fig 11/12 report.
package lsu

import (
	"fmt"
	"math/bits"
	"sort"

	"srvsim/internal/bitvec"
	"srvsim/internal/core"
	"srvsim/internal/isa"
)

// NoInstance marks entries that do not belong to an SRV region.
const NoInstance = -1

// lineShift selects the cacheline granule of the address index.
const lineShift = 6

// Entry is one LQ or SAQ/SDQ entry.
type Entry struct {
	Instance int   // region instance, or NoInstance
	ID       int   // SRV-id: program position (PC) of the owning instruction
	Lane     int   // lane for element entries; -1 for contig/bcast/scalar
	DispSeq  int64 // dispatch order (for squash)
	Seq      int64 // program-order sequence of the latest execution
	IsStore  bool

	Kind core.Kind
	Elem int
	Dir  isa.Direction

	Valid    bool            // address known (executed at least once)
	Addr     uint64          // base address of the footprint
	ActLanes bitvec.LaneMask // lanes whose access is architecturally performed

	// Store data (SDQ): a byte buffer plus a word-parallel validity bit
	// vector, one bit per footprint byte (paper §IV-A's bytes-accessed
	// vectors; at most 128 bits for an 8-byte-element contiguous store).
	Data      []byte
	valid     bitvec.Mask128
	Spec      bool // speculative flag: buffered until region commit
	Committed bool // reached ROB head (outside regions: data written back)

	// Queue plumbing (not architectural state).
	prev, next   *Entry // live list in allocation order; next doubles as the free-list link
	alloc        int64  // allocation stamp: position in the legacy slice order
	gen          uint64 // candidate-collection dedup stamp
	key          lsuKey // current byKey registration (valid when inMap)
	inMap        bool
	indexed      bool   // registered in the per-line address index
	idxLo, idxHi uint64 // registered line range
}

// lsuKey identifies a region entry for the SRV-id reuse rule.
type lsuKey struct {
	instance, id, lane int
}

// Access returns the core access descriptor for the entry's footprint.
func (e *Entry) Access() core.Access {
	return core.Access{Kind: e.Kind, Lane: e.laneOr0(), Addr: e.Addr, Elem: e.Elem, Dir: e.Dir}
}

func (e *Entry) laneOr0() int {
	if e.Lane >= 0 {
		return e.Lane
	}
	return 0
}

// footprint returns the total byte size of the entry's access.
func (e *Entry) footprint() int {
	if e.Kind == core.KindContig {
		return e.Elem * isa.NumLanes
	}
	return e.Elem
}

// laneBoundsAt returns the lanes attributed to byte addr, restricted to
// architecturally active lanes for broadcast entries.
func (e *Entry) laneBoundsAt(addr uint64) (int, int) {
	return e.Access().LaneBounds(addr)
}

// sizeBuffers (re)sizes the SDQ byte buffer to fp zeroed bytes, reusing the
// capacity a recycled entry carries, and clears the validity vector.
func (e *Entry) sizeBuffers(fp int) {
	if cap(e.Data) >= fp {
		e.Data = e.Data[:fp]
		for i := range e.Data {
			e.Data[i] = 0
		}
	} else {
		e.Data = make([]byte, fp)
	}
	e.valid = bitvec.Mask128{}
}

// Stats aggregates the LSU event counts consumed by the evaluation figures
// (Fig 11: address disambiguations; Fig 12: CAM lookups via the power
// model).
type Stats struct {
	LoadIssues        int64
	StoreIssues       int64
	RegionLoadIssues  int64
	RegionStoreIssues int64

	// Address disambiguations (issuing access compared against one queue
	// entry). Vertical uses pure program order; horizontal is lane-aware.
	// The modelled CAM compares against every valid entry of the searched
	// queue, so these counters are derived from live-entry counts, not from
	// the (index-pruned) candidate walks.
	VertDisamb  int64
	HorizDisamb int64

	// CAM lookups per the McPAT accounting of paper §VI-C: a load issue
	// performs one SAQ lookup and one LQ lookup; a store issue one LQ
	// lookup. Inside an SRV region the lookups double and stores add one
	// extra SAQ lookup.
	CAMLookups int64

	FwdBytes      int64 // bytes forwarded from the SDQ
	MemBytes      int64 // bytes read from the memory hierarchy
	PartialFwds   int64 // loads combining SDQ and memory bytes
	WAWWritebacks int64 // bytes suppressed by selective write-back
	Overflows     int64

	// MaxOccupancy is the high-water mark of live entries — the LSU
	// pressure a region exerts, i.e. the headroom before the §III-D7
	// sequential fallback triggers.
	MaxOccupancy int
}

// LSU models the combined 64-entry load-store unit of Table I.
type LSU struct {
	capacity int
	mem      isa.Memory
	ctrl     *core.Controller
	Stats    Stats

	// OnRAW, when non-nil, observes each horizontal RAW violation with the
	// static PC of the violating store and the lanes marked for replay
	// (per-PC replay attribution). Pure observation — never serialised, no
	// architectural effect.
	OnRAW func(pc int, lanes isa.Pred)

	head, tail *Entry // live entries in allocation order
	live       int
	free       *Entry // recycled entries, linked through next
	allocSeq   int64

	byKey     map[lsuKey]*Entry // region entries for the SRV-id reuse rule
	instCount map[int]int       // live entries per region instance

	// Valid-entry counters backing the CAM disambiguation statistics.
	validStores       int
	validStoresByInst map[int]int
	validLoadsOutside int
	validLoadsByInst  map[int]int

	// Per-cacheline address index over valid entries.
	loadLines  map[uint64][]*Entry
	storeLines map[uint64][]*Entry
	queryGen   uint64

	// Scratch buffers, reused across calls on the hot path.
	cands    []*Entry
	memAddrs []uint64
	byteBuf  [8]byte
	written  *bitvec.Set
	stores   []*Entry
	units    []fwdUnit
}

// New returns an LSU with the given total entry capacity.
func New(capacity int, m isa.Memory, ctrl *core.Controller) *LSU {
	return &LSU{
		capacity:          capacity,
		mem:               m,
		ctrl:              ctrl,
		byKey:             make(map[lsuKey]*Entry),
		instCount:         make(map[int]int),
		validStoresByInst: make(map[int]int),
		validLoadsByInst:  make(map[int]int),
		loadLines:         make(map[uint64][]*Entry),
		storeLines:        make(map[uint64][]*Entry),
		written:           bitvec.NewSet(),
	}
}

// Len returns the number of live entries.
func (l *LSU) Len() int { return l.live }

// Capacity returns the configured entry capacity.
func (l *LSU) Capacity() int { return l.capacity }

// ---- live list, free list, indexes ----

func (l *LSU) allocEntry() *Entry {
	e := l.free
	if e == nil {
		e = new(Entry)
	} else {
		l.free = e.next
		data := e.Data
		*e = Entry{}
		e.Data = data[:0]
	}
	l.allocSeq++
	e.alloc = l.allocSeq
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.live++
	if l.live > l.Stats.MaxOccupancy {
		l.Stats.MaxOccupancy = l.live
	}
	return e
}

// unlink removes a live entry: list, rebind map, address index and validity
// counters, then recycles it through the free list.
func (l *LSU) unlink(e *Entry) {
	if e.Valid {
		l.dropValid(e)
	}
	l.unindex(e)
	if e.inMap {
		if l.byKey[e.key] == e {
			delete(l.byKey, e.key)
		}
		e.inMap = false
	}
	if e.Instance != NoInstance {
		if n := l.instCount[e.Instance] - 1; n > 0 {
			l.instCount[e.Instance] = n
		} else {
			delete(l.instCount, e.Instance)
		}
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	l.live--
	e.prev = nil
	e.next = l.free
	l.free = e
}

func (l *LSU) noteValid(e *Entry) {
	if e.IsStore {
		l.validStores++
		if e.Instance != NoInstance {
			l.validStoresByInst[e.Instance]++
		}
	} else if e.Instance == NoInstance {
		l.validLoadsOutside++
	} else {
		l.validLoadsByInst[e.Instance]++
	}
}

func (l *LSU) dropValid(e *Entry) {
	if e.IsStore {
		l.validStores--
		if e.Instance != NoInstance {
			if n := l.validStoresByInst[e.Instance] - 1; n > 0 {
				l.validStoresByInst[e.Instance] = n
			} else {
				delete(l.validStoresByInst, e.Instance)
			}
		}
	} else if e.Instance == NoInstance {
		l.validLoadsOutside--
	} else {
		if n := l.validLoadsByInst[e.Instance] - 1; n > 0 {
			l.validLoadsByInst[e.Instance] = n
		} else {
			delete(l.validLoadsByInst, e.Instance)
		}
	}
}

func (l *LSU) lineTable(isStore bool) map[uint64][]*Entry {
	if isStore {
		return l.storeLines
	}
	return l.loadLines
}

// reindex registers a valid entry's current footprint in the per-line
// index, replacing any previous registration.
func (l *LSU) reindex(e *Entry) {
	lo := e.Addr >> lineShift
	hi := (e.Addr + uint64(e.footprint()) - 1) >> lineShift
	if e.indexed && lo == e.idxLo && hi == e.idxHi {
		return
	}
	l.unindex(e)
	tbl := l.lineTable(e.IsStore)
	for ln := lo; ln <= hi; ln++ {
		tbl[ln] = append(tbl[ln], e)
	}
	e.indexed, e.idxLo, e.idxHi = true, lo, hi
}

func (l *LSU) unindex(e *Entry) {
	if !e.indexed {
		return
	}
	tbl := l.lineTable(e.IsStore)
	for ln := e.idxLo; ln <= e.idxHi; ln++ {
		b := tbl[ln]
		for i, x := range b {
			if x == e {
				b[i] = b[len(b)-1]
				tbl[ln] = b[:len(b)-1]
				break
			}
		}
	}
	e.indexed = false
}

// collect gathers the valid entries of one queue whose indexed footprint
// overlaps the line range of [addr, addr+n), deduplicated (an entry spans
// several lines) and sorted into allocation order so that tie-breaks match
// a front-to-back walk of the legacy entry slice. The returned slice is the
// LSU's scratch buffer: it is valid until the next collect call.
func (l *LSU) collect(isStore bool, addr uint64, n int) []*Entry {
	l.queryGen++
	g := l.queryGen
	tbl := l.lineTable(isStore)
	out := l.cands[:0]
	hi := (addr + uint64(n) - 1) >> lineShift
	for ln := addr >> lineShift; ln <= hi; ln++ {
		for _, e := range tbl[ln] {
			if e.gen == g {
				continue
			}
			e.gen = g
			out = append(out, e)
		}
	}
	// Insertion sort: candidate sets are tiny and mostly ordered already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].alloc < out[j-1].alloc; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	l.cands = out
	return out
}

// ReserveResult is the outcome of a dispatch-time reservation.
type ReserveResult struct {
	Entry    *Entry
	OK       bool
	Overflow bool // full and nothing can free before this region completes
}

// Reserve allocates an entry at dispatch, or rebinds to the existing entry
// with the same (instance, id, lane) — the SRV-id reuse rule for replays
// (paper §III-C: "during replay, no further entries are allocated; instead,
// entries with the same SRV-id are updated").
func (l *LSU) Reserve(instance, id, lane int, isStore bool, dispSeq int64) ReserveResult {
	if instance != NoInstance {
		if e := l.byKey[lsuKey{instance, id, lane}]; e != nil {
			e.DispSeq = dispSeq
			return ReserveResult{Entry: e, OK: true}
		}
	}
	if l.live >= l.capacity {
		// Overflow when every live entry belongs to this same region
		// instance: nothing can be freed before srv_end, which is
		// unreachable without more entries (paper §III-D7).
		overflow := instance != NoInstance && l.instCount[instance] == l.live
		if overflow {
			l.Stats.Overflows++
		}
		return ReserveResult{OK: false, Overflow: overflow}
	}
	e := l.allocEntry()
	e.Instance, e.ID, e.Lane, e.DispSeq, e.IsStore = instance, id, lane, dispSeq, isStore
	e.Seq = 0
	if instance != NoInstance {
		e.key = lsuKey{instance, id, lane}
		l.byKey[e.key] = e
		e.inMap = true
		l.instCount[instance]++
	}
	return ReserveResult{Entry: e, OK: true}
}

// SetLane retargets a single-entry gather/scatter reservation at the lane
// executing this sequential-fallback pass (the dispatcher reserves such
// entries with lane -1). Routing the mutation through the LSU keeps the
// rebind index keyed by the entry's current identity.
func (l *LSU) SetLane(e *Entry, lane int) {
	if e.Lane == lane {
		return
	}
	e.Lane = lane
	if !e.inMap {
		return
	}
	if l.byKey[e.key] == e {
		delete(l.byKey, e.key)
	}
	e.key.lane = lane
	if old := l.byKey[e.key]; old != nil && old.alloc < e.alloc {
		// An older entry already claims this identity; a lookup must keep
		// finding it first, as a front-to-back scan would.
		e.inMap = false
		return
	}
	l.byKey[e.key] = e
}

// LoadResult reports a load execution's outcome.
type LoadResult struct {
	Vals     isa.Vec // per-lane values (elem entries fill Vals[lane])
	FwdBytes int
	MemBytes int
	MemAddrs []uint64 // distinct cache lines are derived by the pipeline;
	// aliases an LSU scratch buffer valid until the next ExecLoad
	WARSuppr bool // some forwarding was suppressed by the WAR rule
}

// ExecLoad executes (or re-executes) a load entry. update marks the lanes
// whose entry state must be refreshed (the replay mask inside a region; all
// lanes outside); act marks the lanes architecturally performing the access
// (update AND governing predicate). For elem entries only entry.Lane is
// consulted. Returns the loaded values for active lanes.
func (l *LSU) ExecLoad(e *Entry, kind core.Kind, addr uint64, elem int, dir isa.Direction,
	update, act isa.Pred, seq int64) LoadResult {

	l.noteIssue(e, false)
	e.Kind, e.Elem, e.Dir, e.Seq = kind, elem, dir, seq
	actMask := core.PredMask(act)
	if e.Instance == NoInstance {
		if !e.Valid {
			e.Valid = true
			l.noteValid(e)
		}
		e.Addr, e.ActLanes = addr, actMask
	} else {
		// Merge: refresh only updated lanes; keep previous rounds' state on
		// the rest (paper §III-C).
		if !e.Valid {
			e.Addr, e.Valid = addr, true
			e.ActLanes = 0
			l.noteValid(e)
		} else if kind == core.KindElem {
			if update[e.Lane] {
				e.Addr = addr
			}
		} else {
			e.Addr = addr // base registers are loop-invariant inside a region
		}
		updateMask := core.PredMask(update)
		e.ActLanes = e.ActLanes&^updateMask | actMask&updateMask
	}
	l.reindex(e)

	// The hardware CAM compares the issuing load against every valid SAQ
	// entry — each comparison is one address disambiguation (Fig 11) —
	// but only entries overlapping the footprint can forward, so the
	// candidate walk below is pruned by the line index.
	horiz := int64(0)
	if e.Instance != NoInstance {
		horiz = int64(l.validStoresByInst[e.Instance])
	}
	l.Stats.HorizDisamb += horiz
	l.Stats.VertDisamb += int64(l.validStores) - horiz

	footEnd := addr + uint64(e.footprint())
	cands := l.collect(true, addr, e.footprint())
	kept := cands[:0]
	for _, st := range cands {
		if st.Addr >= footEnd || addr >= st.Addr+uint64(st.footprint()) {
			continue
		}
		kept = append(kept, st)
	}
	cands = kept

	var res LoadResult
	res.MemAddrs = l.memAddrs[:0]
	warSuppressed := false
	resolve := func(la uint64, lane int) int64 {
		v, w := l.resolveLoad(e, cands, la, elem, lane, &res)
		warSuppressed = warSuppressed || w
		return v
	}
	switch kind {
	case core.KindContig:
		for lane := 0; lane < isa.NumLanes; lane++ {
			if !act[lane] {
				continue
			}
			off := lane
			if dir == isa.DirDown {
				off = isa.NumLanes - 1 - lane
			}
			res.Vals[lane] = resolve(addr+uint64(off*elem), lane)
		}
	case core.KindElem:
		if act[e.Lane] {
			res.Vals[e.Lane] = resolve(addr, e.Lane)
		}
	case core.KindBcast:
		for lane := 0; lane < isa.NumLanes; lane++ {
			if act[lane] {
				res.Vals[lane] = resolve(addr, lane)
			}
		}
	case core.KindScalar:
		res.Vals[0] = resolve(addr, 0)
	}
	l.memAddrs = res.MemAddrs[:0]
	if warSuppressed {
		res.WARSuppr = true
		l.ctrl.RecordWAR()
	}
	return res
}

// fwdUnit is one constant-ordering forwarding source for the claim walk: a
// candidate store entry (or one lane slot of a contiguous store, whose
// sequential position varies per slot) with the window-relative bytes it
// may supply. The masks are word-parallel: a unit claims all its bytes in
// one AND-NOT.
type fwdUnit struct {
	st      *Entry
	key     forwardKey
	allowed uint64 // window-relative forwardable bytes (ByteValid & ordering)
}

// resolveLoad assembles one lane's value: each byte comes from the
// sequentially youngest older store entry holding it, else from memory
// (partial store-to-load forwarding; paper §III-B1 / Witt). Candidates are
// decomposed into constant-ordering units whose byte masks claim the
// window youngest-first — bit-identical to a per-byte youngest scan, with
// the per-byte key comparisons replaced by word-parallel mask ops. The
// second result reports whether the WAR rule suppressed any forwarding.
func (l *LSU) resolveLoad(e *Entry, cands []*Entry, addr uint64, n, lane int, res *LoadResult) (int64, bool) {
	buf := l.byteBuf[:n]
	l.mem.ReadBytes(addr, buf)
	war := false
	eRegion := e.Instance != NoInstance
	winEnd := addr + uint64(n)
	units := l.units[:0]
	for _, st := range cands {
		stEnd := st.Addr + uint64(st.footprint())
		if addr >= stEnd || st.Addr >= winEnd {
			continue
		}
		// Window-relative valid bytes: window byte w maps to footprint
		// offset addr+w-st.Addr.
		var vbits uint64
		if addr >= st.Addr {
			vbits = st.valid.Window(int(addr-st.Addr), n)
		} else {
			d := int(st.Addr - addr)
			vbits = st.valid.Window(0, n-d) << uint(d)
		}
		if vbits == 0 {
			continue // nothing to forward and no WAR to report
		}
		stRegion := st.Instance != NoInstance
		switch {
		case eRegion && stRegion:
			if st.Instance != e.Instance {
				continue // entries of a different region instance never forward
			}
			if st.Kind == core.KindContig {
				// One unit per store lane slot the window touches; the
				// slot's sequential position (its lane) is constant.
				elem := uint64(st.Elem)
				ovLo, ovHi := addr, winEnd // overlap [ovLo, ovHi)
				if st.Addr > ovLo {
					ovLo = st.Addr
				}
				if stEnd < ovHi {
					ovHi = stEnd
				}
				first := int((ovLo - st.Addr) / elem)
				last := int((ovHi - 1 - st.Addr) / elem)
				for idx := first; idx <= last; idx++ {
					sLane := idx
					if st.Dir == isa.DirDown {
						sLane = isa.NumLanes - 1 - idx
					}
					sLo := st.Addr + uint64(idx)*elem
					sHi := sLo + elem
					if sLo < addr {
						sLo = addr
					}
					if sHi > winEnd {
						sHi = winEnd
					}
					slotBits := windowRange(int(sLo-addr), int(sHi-sLo)) & vbits
					if slotBits == 0 {
						continue
					}
					if core.Forwardable(sLane, st.ID, lane, e.ID) {
						units = append(units, fwdUnit{st, forwardKey{region: true, lane: sLane, id: st.ID}, slotBits})
					} else if sLane > lane {
						war = true // cross-lane rejection = WAR
					}
				}
			} else {
				// Elem / broadcast / scalar: constant lane attribution.
				sHi := isa.NumLanes - 1
				if st.Kind == core.KindElem {
					sHi = st.Lane
				}
				if core.Forwardable(sHi, st.ID, lane, e.ID) {
					units = append(units, fwdUnit{st, forwardKey{region: true, lane: sHi, id: st.ID}, vbits})
				} else if sHi > lane {
					war = true
				}
			}
		case eRegion && !stRegion:
			// Pre-region store: program-order older by construction (the
			// srv_start issue gate orders region loads after older stores).
			if st.Seq > e.Seq {
				continue
			}
			units = append(units, fwdUnit{st, forwardKey{seq: st.Seq}, vbits})
		case !eRegion && stRegion:
			continue // speculative region data never forwards outside
		default:
			if st.Seq > e.Seq {
				continue // vertical: younger stores never forward
			}
			units = append(units, fwdUnit{st, forwardKey{seq: st.Seq}, vbits})
		}
	}
	l.units = units[:0]

	// Youngest-first, stable: equal keys keep allocation order, so the
	// first-seen entry wins ties exactly as a front-to-back byte scan did.
	for i := 1; i < len(units); i++ {
		for j := i; j > 0 && units[j].key.younger(units[j-1].key); j-- {
			units[j], units[j-1] = units[j-1], units[j]
		}
	}
	var claimed uint64
	for i := range units {
		u := &units[i]
		take := u.allowed &^ claimed
		if take == 0 {
			continue
		}
		claimed |= take
		base := int(int64(addr) - int64(u.st.Addr)) // window byte w -> footprint offset base+w
		for t := take; t != 0; t &= t - 1 {
			w := bits.TrailingZeros64(t)
			buf[w] = u.st.Data[base+w]
		}
	}
	fwd := bits.OnesCount64(claimed)
	mem := n - fwd
	for w := 0; w < n; w++ {
		if claimed&(1<<uint(w)) == 0 {
			res.MemAddrs = append(res.MemAddrs, addr+uint64(w))
		}
	}
	res.FwdBytes += fwd
	res.MemBytes += mem
	l.Stats.FwdBytes += int64(fwd)
	l.Stats.MemBytes += int64(mem)
	if fwd > 0 && mem > 0 {
		l.Stats.PartialFwds++
	}
	return isa.DecodeInt(buf), war
}

// windowRange returns a window-relative mask with bits [off, off+n) set.
func windowRange(off, n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return ^uint64(0) << uint(off)
	}
	return (uint64(1)<<uint(n) - 1) << uint(off)
}

// forwardKey orders candidate forwarding sources: region entries are younger
// than pre-region entries; among region entries sequential (byte-lane, id)
// order decides; among non-region entries program order decides.
type forwardKey struct {
	region bool
	lane   int
	id     int
	seq    int64
}

func (k forwardKey) younger(o forwardKey) bool {
	if k.region != o.region {
		return k.region
	}
	if k.region {
		if k.lane != o.lane {
			return k.lane > o.lane
		}
		return k.id > o.id
	}
	return k.seq > o.seq
}

// StoreResult reports a store execution's outcome.
type StoreResult struct {
	RAWLanes isa.Pred // lanes recorded into SRV-needs-replay
	WAW      bool     // overlapped an older store in a later lane

	// Vertical RAW: a program-order-younger load already executed with
	// overlapping bytes (aggressive memory-order speculation gone wrong).
	// The pipeline squashes from that load and retrains the store-set
	// predictor (paper §IV-B).
	SquashSeq int64 // dispatch seq of the oldest violating load; -1 if none
	SquashPC  int   // its program counter
}

// ExecStore executes (or re-executes) a store entry, buffering data in the
// SDQ and performing the horizontal checks of paper §III-B2: LQ entries in
// sequentially younger positions that already read overlapping bytes are
// RAW victims (their lanes are recorded for replay); SAQ entries in later
// lanes with overlapping bytes are WAW conflicts (resolved by write-back
// order).
func (l *LSU) ExecStore(e *Entry, kind core.Kind, addr uint64, elem int, dir isa.Direction,
	update, act isa.Pred, vals isa.Vec, seq int64) StoreResult {

	l.noteIssue(e, true)
	e.Kind, e.Elem, e.Dir, e.Seq = kind, elem, dir, seq
	fp := 0
	if kind == core.KindContig {
		fp = elem * isa.NumLanes
	} else {
		fp = elem
	}
	if !e.Valid || e.Instance == NoInstance {
		if !e.Valid {
			e.Valid = true
			l.noteValid(e)
		}
		e.Addr = addr
		e.sizeBuffers(fp)
		e.ActLanes = 0
		e.Spec = e.Instance != NoInstance && l.ctrl.Mode() == core.ModeSpeculative
	} else if kind == core.KindElem {
		if update[e.Lane] && e.Addr != addr {
			e.Addr = addr
			// The footprint moved: previous-round bytes are superseded.
			e.valid = bitvec.Mask128{}
		}
	}

	// Refresh data for updated lanes.
	switch kind {
	case core.KindContig:
		for lane := 0; lane < isa.NumLanes; lane++ {
			if !update[lane] {
				continue
			}
			off := lane
			if dir == isa.DirDown {
				off = isa.NumLanes - 1 - lane
			}
			isa.PutInt(e.Data[off*elem:(off+1)*elem], elem, vals[lane])
			if act[lane] {
				e.ActLanes |= 1 << uint(lane)
				e.valid.SetRange(off*elem, elem)
			} else {
				e.ActLanes &^= 1 << uint(lane)
				e.valid.ClearRange(off*elem, elem)
			}
		}
	case core.KindElem:
		if update[e.Lane] {
			isa.PutInt(e.Data[:elem], elem, vals[e.Lane])
			if act[e.Lane] {
				e.ActLanes = 1 << uint(e.Lane)
				e.valid = bitvec.Range128(0, elem)
			} else {
				e.ActLanes = 0
				e.valid = bitvec.Mask128{}
			}
		}
	case core.KindScalar:
		isa.PutInt(e.Data, elem, vals[0])
		e.valid = bitvec.Range128(0, len(e.Data))
	default:
		panic(fmt.Sprintf("lsu: store kind %v unsupported (pc=%d seq=%d lane=%d instance=%d addr=%#x)",
			kind, e.ID, seq, e.Lane, e.Instance, addr))
	}
	l.reindex(e)

	var res StoreResult
	res.SquashSeq = -1
	if e.Instance == NoInstance || l.ctrl.Mode() != core.ModeSpeculative {
		// Vertical disambiguation: search the LQ for younger loads that
		// already read bytes this store produces. The CAM compares against
		// every valid non-region load; only line-overlapping ones can
		// violate.
		l.Stats.VertDisamb += int64(l.validLoadsOutside)
		for _, ld := range l.collect(false, addr, fp) {
			if ld.Instance != NoInstance {
				continue
			}
			if ld.Seq <= e.Seq {
				continue
			}
			if e.Access().Overlaps(ld.Access()) {
				if res.SquashSeq < 0 || ld.Seq < res.SquashSeq {
					res.SquashSeq, res.SquashPC = ld.Seq, ld.ID
				}
			}
		}
		return res
	}

	// Horizontal RAW: sequentially younger loads that already read bytes of
	// this store. Loads at later program positions whose lanes are being
	// re-executed this round will pick the fresh data up via forwarding and
	// are skipped, as are bytes of store lanes not updated this round (their
	// data is unchanged and was already forwarded or flagged).
	l.Stats.HorizDisamb += int64(l.validLoadsByInst[e.Instance])
	replayMask := core.PredMask(l.ctrl.Replay())
	updateMask := core.PredMask(update)
	iss := e.Access()
	var rawMask bitvec.LaneMask
	for _, ld := range l.collect(false, addr, fp) {
		if ld.Instance != e.Instance {
			continue
		}
		// Word-parallel: violating lanes restricted to lanes the load
		// architecturally performed (elem loads have per-lane footprints;
		// contig per-lane spans are encoded in the Access lane attribution
		// already). Lanes being re-read after this store in this round pick
		// the fresh data up via forwarding instead.
		viol := core.ViolatingLaneMask(iss, ld.Access(), updateMask) & ld.ActLanes
		if ld.ID > e.ID {
			viol &^= replayMask
		}
		rawMask |= viol
	}
	if rawMask.Any() {
		res.RAWLanes = core.MaskPred(rawMask)
		l.ctrl.RecordRAW(res.RAWLanes)
		if l.OnRAW != nil {
			l.OnRAW(e.ID, res.RAWLanes)
		}
	}

	// Horizontal WAW: older stores in later lanes covering common bytes.
	l.Stats.HorizDisamb += int64(l.validStoresByInst[e.Instance] - 1)
	for _, st := range l.collect(true, addr, fp) {
		if st == e || st.Instance != e.Instance {
			continue
		}
		if core.ViolatingLaneMask(iss, st.Access(), core.AllLanes).Any() && iss.Overlaps(st.Access()) {
			res.WAW = true
		}
	}
	if res.WAW {
		l.ctrl.RecordWAW()
	}
	return res
}

// noteIssue updates the issue counters and CAM-lookup accounting.
func (l *LSU) noteIssue(e *Entry, isStore bool) {
	region := e.Instance != NoInstance && l.ctrl.Mode() == core.ModeSpeculative
	if isStore {
		l.Stats.StoreIssues++
		if region {
			l.Stats.RegionStoreIssues++
			// Doubled lookups plus one extra SAQ lookup (paper §VI-C).
			l.Stats.CAMLookups += 2 + 1
		} else {
			l.Stats.CAMLookups++ // one LQ lookup
		}
	} else {
		l.Stats.LoadIssues++
		if region {
			l.Stats.RegionLoadIssues++
			l.Stats.CAMLookups += 2 // horizontal replaces vertical; lookups unchanged in count but both queues searched
		} else {
			l.Stats.CAMLookups += 2 // SAQ + LQ
		}
	}
}

// CommitStore writes a non-speculative store's data to memory and releases
// the entry (outside regions, or fallback-mode region stores).
func (l *LSU) CommitStore(e *Entry) {
	if e.Spec {
		e.Committed = true // data stays buffered (paper §III-D4)
		return
	}
	l.writeEntry(e)
	l.unlink(e)
}

// Release frees a load entry (at commit, outside regions).
func (l *LSU) Release(e *Entry) {
	if e.Instance != NoInstance {
		return // region entries live until region commit
	}
	l.unlink(e)
}

// DebugWatch, when non-zero, prints every entry write-back covering the
// address. Test-only instrumentation.
var DebugWatch uint64

func (l *LSU) writeEntry(e *Entry) {
	if DebugWatch != 0 {
		fmt.Printf("  writeEntry id=%d lane=%d inst=%d seq=%d addr=%#x\n",
			e.ID, e.Lane, e.Instance, e.Seq, e.Addr)
	}
	// Batch runs of valid bytes into single memory writes.
	for off, n := e.valid.NextRun(0); n > 0; off, n = e.valid.NextRun(off + n) {
		l.mem.WriteBytes(e.Addr+uint64(off), e.Data[off:off+n])
	}
}

// collectStores gathers the valid stores of a region instance in allocation
// order into the reusable scratch slice.
func (l *LSU) collectStores(instance int) []*Entry {
	stores := l.stores[:0]
	for e := l.head; e != nil; e = e.next {
		if e.Instance == instance && e.IsStore && e.Valid {
			stores = append(stores, e)
		}
	}
	l.stores = stores
	return stores
}

// CommitRegion writes back the speculative stores of a region instance in
// sequential (iteration-major) order so that the youngest store to each
// byte wins, then frees every entry of the instance (paper §III-B3, §III-D4).
func (l *LSU) CommitRegion(instance int) {
	stores := l.collectStores(instance)
	sort.Slice(stores, func(i, j int) bool { return storeSeqLess(stores[i], stores[j]) })
	written := l.written
	written.Reset()
	for i := len(stores) - 1; i >= 0; i-- { // youngest first; skip overwritten bytes
		e := stores[i]
		// Walk the footprint one alignment region at a time: the entry's
		// valid bytes AND the already-written mask resolve a whole region's
		// WAW suppression in two word operations (paper §IV-A).
		fp := len(e.Data)
		for fpOff := 0; fpOff < fp; {
			a := e.Addr + uint64(fpOff)
			base := bitvec.Base(a)
			rOff := bitvec.Offset(a)
			cnt := bitvec.RegionSize - rOff
			if cnt > fp-fpOff {
				cnt = fp - fpOff
			}
			vm := bitvec.Mask(e.valid.Window(fpOff, cnt)) << uint(rOff)
			if vm != 0 {
				w := written.Get(base)
				l.Stats.WAWWritebacks += int64((vm & w).Count())
				take := vm &^ w
				written.Add(bitvec.RegionMask{Base: base, Mask: take})
				t := bitvec.Mask128{uint64(take)}
				for off, n := t.NextRun(0); n > 0; off, n = t.NextRun(off + n) {
					d := fpOff + off - rOff
					l.mem.WriteBytes(base+uint64(off), e.Data[d:d+n])
				}
			}
			fpOff += cnt
		}
	}
	l.freeInstance(instance)
}

// storeSeqLess orders two same-instance store entries in sequential
// (iteration-major) order. Contiguous stores span all lanes; they are
// ordered against element entries by their lowest active lane, with ID as
// the within-lane tie-break. For byte-accurate WAW resolution the
// youngest-first walk above relies on per-byte coverage, so this ordering
// only needs to be consistent for entries covering the same byte — which
// have well-defined lanes at that byte. Contiguous-vs-element collisions on
// a byte order by the byte's lane, which equals the element's lane when they
// collide; ID breaks the tie.
func storeSeqLess(a, b *Entry) bool {
	la, lb := a.laneOr0(), b.laneOr0()
	if a.Kind == core.KindContig || b.Kind == core.KindContig {
		// Same-byte collisions between contiguous entries (same lane at the
		// byte) and element entries reduce to ID order when lanes tie.
		if a.Kind == core.KindContig && b.Kind == core.KindContig {
			return a.ID < b.ID
		}
		// Compare the element entry's lane against the contiguous entry's
		// lane at the element's address.
		if a.Kind == core.KindContig {
			ca, _ := a.Access().LaneBounds(clampAddr(b.Addr, a))
			if ca != lb {
				return ca < lb
			}
			return a.ID < b.ID
		}
		cb, _ := b.Access().LaneBounds(clampAddr(a.Addr, b))
		if la != cb {
			return la < cb
		}
		return a.ID < b.ID
	}
	if la != lb {
		return la < lb
	}
	return a.ID < b.ID
}

func clampAddr(addr uint64, e *Entry) uint64 {
	if addr < e.Addr {
		return e.Addr
	}
	end := e.Addr + uint64(e.footprint()) - 1
	if addr > end {
		return end
	}
	return addr
}

// WritebackNonSpec writes back the non-speculative portion of a region at an
// interrupt (paper §III-D2): all data from lanes older than oldestLane, plus
// the oldest lane's stores at program positions before uptoID. The rest is
// discarded with the instance.
func (l *LSU) WritebackNonSpec(instance, oldestLane, uptoID int) {
	stores := l.collectStores(instance)
	sort.Slice(stores, func(i, j int) bool { return storeSeqLess(stores[i], stores[j]) })
	nonSpec := func(lo int, e *Entry) bool {
		return lo < oldestLane || (lo == oldestLane && e.ID < uptoID)
	}
	writeMasked := func(e *Entry, m bitvec.Mask128) {
		for off, n := m.NextRun(0); n > 0; off, n = m.NextRun(off + n) {
			l.mem.WriteBytes(e.Addr+uint64(off), e.Data[off:off+n])
		}
	}
	for _, e := range stores {
		if e.Kind != core.KindContig {
			// Elem entries sit wholly in one lane; scalar entries attribute
			// to the pseudo-lane range starting at 0. One test per entry.
			lo := 0
			if e.Kind == core.KindElem {
				lo = e.Lane
			}
			if nonSpec(lo, e) {
				writeMasked(e, e.valid)
			}
			continue
		}
		// Contiguous: one lane per element slot, walked in byte order so
		// write ordering matches the per-byte reference.
		for idx := 0; idx < isa.NumLanes; idx++ {
			lane := idx
			if e.Dir == isa.DirDown {
				lane = isa.NumLanes - 1 - idx
			}
			if nonSpec(lane, e) {
				writeMasked(e, e.valid.And(bitvec.Range128(idx*e.Elem, e.Elem)))
			}
		}
	}
	l.freeInstance(instance)
}

// DiscardRegion frees all entries of an instance without writing anything.
func (l *LSU) DiscardRegion(instance int) {
	l.freeInstance(instance)
}

// SquashYounger removes entries dispatched after dispSeq that are not part
// of a still-live older region pass.
func (l *LSU) SquashYounger(dispSeq int64) {
	for e := l.head; e != nil; {
		next := e.next
		if e.DispSeq > dispSeq && !(e.IsStore && e.Committed) {
			l.unlink(e)
		}
		e = next
	}
}

func (l *LSU) freeInstance(instance int) {
	for e := l.head; e != nil; {
		next := e.next
		if e.Instance == instance {
			l.unlink(e)
		}
		e = next
	}
}

// Entries exposes a snapshot of live entries for tests and debug dumps, in
// allocation order. Returns nil without allocating when the LSU is empty.
func (l *LSU) Entries() []*Entry {
	if l.live == 0 {
		return nil
	}
	out := make([]*Entry, 0, l.live)
	for e := l.head; e != nil; e = e.next {
		out = append(out, e)
	}
	return out
}
