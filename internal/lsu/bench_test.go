package lsu

import (
	"testing"

	"srvsim/internal/core"
	"srvsim/internal/isa"
	"srvsim/internal/mem"
)

// The benchmarks exercise the LSU hot paths the pipeline hits on every
// memory instruction: entry allocation, load execution against a populated
// store queue, store execution with WAR/WAW disambiguation, and region
// commit. Run with -benchmem; the point of the address index, free list and
// scratch buffers is the allocs/op column.

func benchLSU(b *testing.B) (*LSU, *mem.Image, *core.Controller) {
	b.Helper()
	im := mem.NewImage()
	for a := uint64(0x1000); a < 0x3000; a++ {
		im.WriteInt(a, 1, int64(a&0xFF))
	}
	ctrl := &core.Controller{}
	if err := ctrl.Start(1, isa.DirUp); err != nil {
		b.Fatalf("Start: %v", err)
	}
	return New(256, im, ctrl), im, ctrl
}

// mustReserve is the benchmark-side counterpart of the tests' reserve helper.
func mustReserve(b *testing.B, l *LSU, instance, id, lane int, isStore bool, seq int64) *Entry {
	b.Helper()
	r := l.Reserve(instance, id, lane, isStore, seq)
	if !r.OK {
		b.Fatalf("Reserve(%d,%d,%d) failed", instance, id, lane)
	}
	return r.Entry
}

func BenchmarkReserveRelease(b *testing.B) {
	l, _, _ := benchLSU(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := l.Reserve(NoInstance, 10, -1, false, int64(i+1))
		if !r.OK {
			b.Fatal("Reserve failed")
		}
		l.Release(r.Entry)
	}
}

// BenchmarkExecLoad measures a load resolving against a store queue holding
// 24 live stores on nearby cachelines — the candidate-search path.
func BenchmarkExecLoad(b *testing.B) {
	l, _, _ := benchLSU(b)
	for i := 0; i < 24; i++ {
		st := mustReserve(b, l, NoInstance, 10+i, -1, true, int64(i+1))
		l.ExecStore(st, core.KindScalar, 0x1000+uint64(i*64), 8, isa.DirUp,
			all(), all(), isa.Vec{0: int64(i)}, int64(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := int64(100 + i)
		ld := mustReserve(b, l, NoInstance, 99, -1, false, seq)
		l.ExecLoad(ld, core.KindScalar, 0x1000+uint64(i%24)*64, 8, isa.DirUp,
			all(), all(), seq)
		l.Release(ld)
	}
}

// BenchmarkExecStore measures store execution (value encode, index insert,
// disambiguation against resident loads) followed by commit write-back.
func BenchmarkExecStore(b *testing.B) {
	l, _, _ := benchLSU(b)
	for i := 0; i < 16; i++ {
		ld := mustReserve(b, l, NoInstance, 10+i, -1, false, int64(i+1))
		l.ExecLoad(ld, core.KindScalar, 0x2000+uint64(i*64), 8, isa.DirUp,
			all(), all(), int64(i+1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := int64(100 + i)
		st := mustReserve(b, l, NoInstance, 99, -1, true, seq)
		l.ExecStore(st, core.KindScalar, 0x2000+uint64(i%16)*64, 8, isa.DirUp,
			all(), all(), isa.Vec{0: int64(i)}, seq)
		l.CommitStore(st)
	}
}

// BenchmarkCommitRegion builds a 16-lane region with a contiguous store per
// iteration slot and commits it: collect, sequential-order sort, per-byte
// WAW-resolved write-back, free.
func BenchmarkCommitRegion(b *testing.B) {
	l, _, _ := benchLSU(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			st := mustReserve(b, l, 0, 2+j, -1, true, int64(j+1))
			l.ExecStore(st, core.KindContig, 0x1000+uint64(j*16), 1, isa.DirUp,
				all(), all(), vecOf(func(k int) int64 { return int64(k + j) }), int64(j+1))
		}
		l.CommitRegion(0)
		if l.Len() != 0 {
			b.Fatalf("region not freed: %d live", l.Len())
		}
	}
}
