package lsu

import "srvsim/internal/obsv"

// RegisterMetrics registers the LSU's counters into the given registry
// section. The counters are registered as pointers into Stats, so the
// execution hot path keeps its plain field increments; the registry reads
// the live values at export time.
func (l *LSU) RegisterMetrics(s obsv.Section) {
	s.Counter("lsu.loadIssues", "load executions", &l.Stats.LoadIssues)
	s.Counter("lsu.storeIssues", "store executions", &l.Stats.StoreIssues)
	s.Counter("lsu.regionLoadIssues", "in-region load executions", &l.Stats.RegionLoadIssues)
	s.Counter("lsu.regionStoreIssues", "in-region store executions", &l.Stats.RegionStoreIssues)
	s.Counter("lsu.disamb.vertical", "vertical address disambiguations", &l.Stats.VertDisamb)
	s.Counter("lsu.disamb.horizontal", "horizontal address disambiguations", &l.Stats.HorizDisamb)
	s.Counter("lsu.camLookups", "CAM lookups (power model input)", &l.Stats.CAMLookups)
	s.Counter("lsu.fwdBytes", "bytes forwarded from the SDQ", &l.Stats.FwdBytes)
	s.Counter("lsu.memBytes", "bytes read from the memory hierarchy", &l.Stats.MemBytes)
	s.Counter("lsu.partialFwds", "loads combining SDQ and memory bytes", &l.Stats.PartialFwds)
	s.Counter("lsu.wawSuppressedBytes", "write-backs suppressed by WAW resolution", &l.Stats.WAWWritebacks)
	s.Counter("lsu.overflows", "region footprints exceeding the LSU", &l.Stats.Overflows)
	s.CounterFn("lsu.maxOccupancy", "peak live entries (fallback headroom)", func() int64 { return int64(l.Stats.MaxOccupancy) })
	s.CounterFn("lsu.liveEntries", "entries still resident at end of run", func() int64 { return int64(l.Len()) })
}
