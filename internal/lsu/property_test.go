package lsu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"srvsim/internal/core"
	"srvsim/internal/isa"
)

// TestQuickWAWYoungestWins: for random sets of element stores inside one
// region, the committed memory holds, at every byte, the data of the
// sequentially youngest store covering it (paper §III-B3's selective
// memory update).
func TestQuickWAWYoungestWins(t *testing.T) {
	type storeDesc struct {
		Lane uint8
		PC   uint8
		Slot uint8
		Val  uint8
	}
	f := func(descs [12]storeDesc) bool {
		l, im, ctrl := newLSU(64)
		if err := ctrl.Start(1, isa.DirUp); err != nil {
			return false
		}
		base := uint64(0x9000)
		// Model of expected memory: youngest (lane, pc) per slot.
		type key struct{ lane, pc int }
		bestKey := map[int]key{}
		bestVal := map[int]int64{}
		seq := int64(0)
		seen := map[[2]int]bool{}
		for _, d := range descs {
			lane := int(d.Lane) % isa.NumLanes
			pc := 2 + int(d.PC)%4
			if seen[[2]int{pc, lane}] {
				continue // one entry per (SRV-id, lane)
			}
			seen[[2]int{pc, lane}] = true
			slot := int(d.Slot) % 6
			val := int64(d.Val)
			seq++
			e := l.Reserve(0, pc, lane, true, seq).Entry
			var act isa.Pred
			act[lane] = true
			var vals isa.Vec
			vals[lane] = val
			l.ExecStore(e, core.KindElem, base+uint64(slot*4), 4, isa.DirUp, act, act, vals, seq)
			if k, ok := bestKey[slot]; !ok || core.SeqBefore(k.lane, k.pc, lane, pc) {
				bestKey[slot] = key{lane, pc}
				bestVal[slot] = val
			}
		}
		l.CommitRegion(0)
		for slot, want := range bestVal {
			if got := im.ReadInt(base+uint64(slot*4), 4); got != want {
				return false
			}
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickForwardingMatchesSequentialModel: after a random sequence of
// region stores, a load from any lane must see, per byte, exactly what a
// strict sequential execution of the (lane, pc)-ordered stores up to the
// load's position would have left.
func TestQuickForwardingMatchesSequentialModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		l, im, ctrl := newLSU(64)
		if err := ctrl.Start(1, isa.DirUp); err != nil {
			t.Fatal(err)
		}
		base := uint64(0xA000)
		for b := 0; b < 32; b++ {
			im.WriteInt(base+uint64(b), 1, int64(100+b))
		}
		type st struct {
			lane, pc, slot int
			val            int64
		}
		var sts []st
		seen := map[[2]int]bool{}
		seq := int64(0)
		for i := 0; i < 8; i++ {
			s := st{lane: rng.Intn(isa.NumLanes), pc: 2 + rng.Intn(3),
				slot: rng.Intn(8), val: int64(rng.Intn(100))}
			if seen[[2]int{s.pc, s.lane}] {
				continue
			}
			seen[[2]int{s.pc, s.lane}] = true
			sts = append(sts, s)
			seq++
			e := l.Reserve(0, s.pc, s.lane, true, seq).Entry
			var act isa.Pred
			act[s.lane] = true
			var vals isa.Vec
			vals[s.lane] = s.val
			l.ExecStore(e, core.KindElem, base+uint64(s.slot*4), 4, isa.DirUp, act, act, vals, seq)
		}
		// A load at a random (lane, pc) position over a random slot.
		loadLane := rng.Intn(isa.NumLanes)
		loadPC := 2 + rng.Intn(5)
		slot := rng.Intn(8)
		seq++
		le := l.Reserve(0, 50+loadPC, loadLane, false, seq).Entry
		var act isa.Pred
		act[loadLane] = true
		res := l.ExecLoad(le, core.KindElem, base+uint64(slot*4), 4, isa.DirUp, act, act, seq)

		// Sequential model: youngest store to the slot that is sequentially
		// before (loadLane, 50+loadPC).
		want := int64(0)
		haveStore := false
		bl, bp := -1, -1
		for _, s := range sts {
			if s.slot != slot {
				continue
			}
			if !core.SeqBefore(s.lane, s.pc, loadLane, 50+loadPC) {
				continue
			}
			if !haveStore || core.SeqBefore(bl, bp, s.lane, s.pc) {
				haveStore, bl, bp, want = true, s.lane, s.pc, s.val
			}
		}
		if !haveStore {
			want = int64(0) // memory bytes at the slot
			var buf [4]byte
			im.ReadBytes(base+uint64(slot*4), buf[:])
			want = isa.DecodeInt(buf[:])
		}
		if got := res.Vals[loadLane]; got != want {
			t.Fatalf("trial %d: load lane %d pc %d slot %d = %d, want %d (stores %+v)",
				trial, loadLane, loadPC, slot, got, want, sts)
		}
	}
}
