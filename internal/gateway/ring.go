// Package gateway is the fleet coordinator behind cmd/srvgw: it shards
// harness.Requests across N srvd nodes by their content-addressed CacheKey
// using a consistent-hash ring, forwards the full /v1 API surface (submit,
// status, stream, trace) with W3C traceparent propagated end to end, and
// keeps the fleet honest — per-node health tracking piggybacked on the
// serve.Client circuit breaker ejects and readmits nodes, a two-tier result
// cache (gateway LRU in front of the owning node's cache) answers repeats
// without a hop, work-stealing reroutes submissions when the owner's
// predicted queue wait exceeds a threshold, and a draining node's jobs are
// handed off to the next ring owner instead of bouncing as 503s.
//
// Determinism does the heavy lifting throughout: requests are
// content-addressed and the simulator is deterministic, so resubmitting a
// job to a different node — on hand-off, rescue, or plain retry — always
// produces the byte-identical Result, and duplicate submissions dedupe
// through each node's own cache.
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the ring replication factor: how many points each
// node owns on the ring. 128 keeps the per-node share of 1k keys within a
// few percent of 1/N while the ring stays small enough to rebuild on every
// membership change.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring mapping string keys onto named nodes.
// Ownership is a pure function of the member set — join order does not
// matter — and membership changes remap only the keys whose arc moved
// (about 1/N of them), so a node joining or leaving never reshuffles the
// whole fleet's cache locality.
//
// The ring itself tracks only membership; liveness is the caller's concern.
// Successors returns every member in ring order from a key, and the caller
// (Gateway.route) walks that order skipping ineligible or overloaded nodes —
// the bounded-load variant of consistent hashing.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	hashes []uint64          // sorted vnode positions
	owners map[uint64]string // position -> node name
	nodes  map[string]bool
}

// NewRing returns an empty ring with the given replication factor
// (vnodes <= 0 selects DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{
		vnodes: vnodes,
		owners: make(map[uint64]string),
		nodes:  make(map[string]bool),
	}
}

// hash64 hashes s onto the ring. sha256 is already the repo's
// content-address hash (harness.Request.CacheKey), is uniform enough that
// vnode shares concentrate tightly around 1/N, and is nowhere near a hot
// path — the ring rehashes only on membership change, and key lookups hash
// once per request.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node. Adding a present node is a no-op.
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[name] {
		return
	}
	r.nodes[name] = true
	r.rebuild()
}

// Remove deletes a node. Removing an absent node is a no-op.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[name] {
		return
	}
	delete(r.nodes, name)
	r.rebuild()
}

// rebuild recomputes every vnode position from the member set (caller holds
// mu). Rebuilding from scratch — rather than patching incrementally — makes
// ownership trivially a pure function of membership: join order cannot leak
// in, and on the (astronomically unlikely) collision of two vnode positions
// the lexicographically smaller name wins deterministically. Membership
// changes are rare (node join/leave), so O(nodes × vnodes × log) is fine.
func (r *Ring) rebuild() {
	names := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	r.hashes = r.hashes[:0]
	r.owners = make(map[uint64]string, len(names)*r.vnodes)
	for _, name := range names {
		for i := 0; i < r.vnodes; i++ {
			h := hash64(name + "#" + strconv.Itoa(i))
			if _, taken := r.owners[h]; taken {
				continue // earlier (smaller) name keeps the position
			}
			r.owners[h] = name
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Len returns the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key: the first vnode clockwise from the
// key's position. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// Successors returns up to n distinct nodes in ring order starting at key's
// owner — the hand-off order for bounded-load routing: a caller that finds
// the owner ineligible (draining, ejected, overloaded) walks to the next.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		name := r.owners[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}
