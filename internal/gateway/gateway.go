package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"srvsim/internal/harness"
	"srvsim/internal/obsv"
	"srvsim/internal/serve"
)

// DefaultStealThreshold is the predicted-wait level past which the gateway
// steals work from a shard's owner: long enough that cache locality wins on
// a healthy fleet, short enough that one hot shard cannot queue minutes of
// work while its neighbours idle.
const DefaultStealThreshold = 2 * time.Second

// DefaultHealthInterval paces the per-node health polls that feed routing
// eligibility, work-stealing and drain rescue.
const DefaultHealthInterval = time.Second

// DefaultCacheMaxBytes bounds the gateway-tier result cache payload: entry
// count alone lets a few multi-MB benchmark Results blow any sensible memory
// budget, so the byte bound is on by default at the edge.
const DefaultCacheMaxBytes = 256 << 20

// DefaultHandoffBudget caps how many ring successors beyond the owner a
// submission may be handed off to. The caller's X-Srv-Retry-Budget can lower
// it further — never raise it — so client retries and gateway hand-offs
// cannot multiply into a fleet-wide submission storm.
const DefaultHandoffBudget = 3

// Config sizes the gateway.
type Config struct {
	// Nodes are the srvd base URLs forming the fleet (e.g.
	// "http://127.0.0.1:8077"). The address is the node's ring identity.
	Nodes []string
	// NodeID names the gateway itself in statuses it synthesises (gateway
	// cache hits). Default "srvgw".
	NodeID string
	// VirtualNodes is the ring replication factor (0 = DefaultVirtualNodes).
	VirtualNodes int
	// CacheSize bounds the gateway-tier result cache (LRU). Default 256;
	// negative disables it (node caches still apply).
	CacheSize int
	// CacheMaxBytes bounds the gateway-tier cache by total payload bytes.
	// 0 selects DefaultCacheMaxBytes; negative leaves bytes unbounded.
	CacheMaxBytes int64
	// HandoffBudget caps hand-off attempts beyond the shard owner. 0 selects
	// DefaultHandoffBudget; negative disables hand-off entirely (owner only).
	HandoffBudget int
	// TenantQuota is the edge-enforced per-tenant quota applied to tenants
	// without an override: submission rate and in-flight body bytes. Nodes
	// enforce their own quotas again behind the gateway (the gateway guards
	// the edge window; nodes guard queue residency). Zero = unlimited.
	TenantQuota serve.TenantLimits
	// TenantQuotas overrides TenantQuota for named tenants.
	TenantQuotas map[string]serve.TenantLimits
	// StealThreshold: when the owning node's predicted queue wait exceeds
	// this, the submission is routed to the least-loaded eligible node
	// instead. 0 selects DefaultStealThreshold; negative disables stealing.
	StealThreshold time.Duration
	// HealthInterval paces node health polls (0 = DefaultHealthInterval).
	HealthInterval time.Duration
	// MaxInflightBytes caps a submission body, mirroring the node-side guard
	// so oversized requests die at the edge. 0 selects
	// serve.DefaultMaxInflightBytes; negative disables.
	MaxInflightBytes int64
	// Logger receives the gateway's structured logs. nil silences them.
	Logger *slog.Logger
	// SpanCap bounds the gateway's span buffer (0 = obsv.DefaultSpanCap).
	SpanCap int
}

func (c Config) withDefaults() Config {
	if c.NodeID == "" {
		c.NodeID = "srvgw"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = DefaultCacheMaxBytes
	} else if c.CacheMaxBytes < 0 {
		c.CacheMaxBytes = 0
	}
	if c.HandoffBudget == 0 {
		c.HandoffBudget = DefaultHandoffBudget
	} else if c.HandoffBudget < 0 {
		c.HandoffBudget = 0
	}
	if c.StealThreshold == 0 {
		c.StealThreshold = DefaultStealThreshold
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	if c.MaxInflightBytes == 0 {
		c.MaxInflightBytes = serve.DefaultMaxInflightBytes
	}
	return c
}

// gwJob tracks one submission the gateway accepted: which node owns it,
// what its remote job ID is there, and — because requests are
// content-addressed and the simulator deterministic — everything needed to
// resubmit it elsewhere (the canonical body) if the owner drains or dies.
type gwJob struct {
	id        string
	key       string
	body      []byte // canonical request JSON, the resubmission payload
	mode      harness.Mode
	bench     string
	tenant    string // submitting principal, forwarded as X-Srv-Tenant
	bodyBytes int64  // charged against the tenant's in-flight-bytes quota
	deadline  time.Time
	budget    int              // remaining hand-off attempts beyond the first forward
	trace     obsv.SpanContext // trace + the gateway's route span (forwarded parent)
	submitted time.Time

	mu       sync.Mutex
	node     string // owning node's ring name
	remoteID string // job ID on the owning node
	handoffs int
	released bool             // tenant's in-flight bytes returned already
	final    *serve.JobStatus // terminal status, once known
}

func (j *gwJob) snapshot() (node, remoteID string, final *serve.JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.node, j.remoteID, j.final
}

func (j *gwJob) setOwner(node, remoteID string) {
	j.mu.Lock()
	j.node, j.remoteID = node, remoteID
	j.mu.Unlock()
}

func (j *gwJob) setFinal(st serve.JobStatus) {
	j.mu.Lock()
	j.final = &st
	j.mu.Unlock()
}

// finish records a job's terminal status and returns its body bytes to the
// tenant's in-flight allowance, exactly once however many paths race to it.
func (g *Gateway) finish(j *gwJob, st serve.JobStatus) {
	j.setFinal(st)
	g.releaseJob(j)
}

// releaseJob returns the job's charged bytes without finalising it (refusal
// paths, where the job will never run). Idempotent.
func (g *Gateway) releaseJob(j *gwJob) {
	j.mu.Lock()
	release := !j.released
	j.released = true
	j.mu.Unlock()
	if release {
		g.quotas.ReleaseBytes(j.tenant, j.bodyBytes)
	}
}

// Gateway shards submissions across the fleet and forwards the /v1 surface.
// Construct with New, install Handler, call Start, Shutdown on the way out.
type Gateway struct {
	cfg    Config
	ring   *Ring
	nodes  map[string]*node
	order  []string // configured node order, for stable iteration
	cache  *serve.ResultCache
	quotas *serve.Quotas
	met    gwMetrics
	reg    *obsv.Registry
	spans  *obsv.SpanRecorder
	logger *slog.Logger

	mu     sync.RWMutex
	jobs   map[string]*gwJob
	nextID atomic.Int64

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started time.Time
}

// New builds a stopped gateway over the configured fleet; call Start to
// launch the health-poll loop.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("gateway: no nodes configured")
	}
	g := &Gateway{
		cfg:    cfg,
		ring:   NewRing(cfg.VirtualNodes),
		nodes:  make(map[string]*node, len(cfg.Nodes)),
		cache:  serve.NewResultCacheBytes(cfg.CacheSize, cfg.CacheMaxBytes),
		quotas: serve.NewQuotas(cfg.TenantQuota, cfg.TenantQuotas),
		jobs:   make(map[string]*gwJob),
		spans:  obsv.NewSpanRecorder(cfg.SpanCap),
		logger: cfg.Logger,
	}
	if g.logger == nil {
		g.logger = slog.New(discardHandler{})
	}
	for _, addr := range cfg.Nodes {
		if _, dup := g.nodes[addr]; dup {
			return nil, fmt.Errorf("gateway: node %q configured twice", addr)
		}
		g.nodes[addr] = newNode(addr)
		g.order = append(g.order, addr)
		g.ring.Add(addr)
	}
	g.reg = g.met.registry(g)
	g.ctx, g.cancel = context.WithCancel(context.Background())
	return g, nil
}

// Registry exposes the gateway metrics (for embedding in other exporters).
func (g *Gateway) Registry() *obsv.Registry { return g.reg }

// Spans exposes the gateway's span recorder.
func (g *Gateway) Spans() *obsv.SpanRecorder { return g.spans }

// Start launches the health-poll loop (which also drives drain rescue).
func (g *Gateway) Start() {
	g.started = time.Now()
	g.pollOnce() // seed eligibility before the first request arrives
	g.wg.Add(1)
	go g.pollLoop()
}

// Shutdown stops the poll loop. In-flight forwards run to their own
// completion — the gateway holds no queue of its own to drain.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.cancel()
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Gateway) pollLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-t.C:
			g.pollOnce()
		}
	}
}

// pollOnce refreshes every node's health snapshot concurrently (a dead node
// must not stall the loop past its own timeout), then rescues jobs stranded
// on ineligible nodes.
func (g *Gateway) pollOnce() {
	g.met.healthPolls.Add(1)
	var wg sync.WaitGroup
	for _, name := range g.order {
		n := g.nodes[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.poll(g.ctx, g.cfg.HealthInterval)
		}()
	}
	wg.Wait()
	g.rescueOrphans()
}

// route returns the eligible nodes for key in hand-off order: ring
// successors of the key's owner, skipping ejected/draining/unhealthy nodes
// (and exclude), with one work-stealing adjustment — if the owner's
// predicted queue wait exceeds the threshold, the least-loaded eligible
// node is promoted to the front instead.
func (g *Gateway) route(key, exclude string) []*node {
	names := g.ring.Successors(key, g.ring.Len())
	cands := make([]*node, 0, len(names))
	for _, nm := range names {
		if nm == exclude {
			continue
		}
		if n := g.nodes[nm]; n != nil && n.eligible() {
			cands = append(cands, n)
		}
	}
	if th := g.cfg.StealThreshold; th > 0 && len(cands) > 1 {
		if owner := cands[0]; owner.predictedWaitMS() > float64(th.Milliseconds()) {
			best := 0
			for i, n := range cands {
				if n.predictedWaitMS() < cands[best].predictedWaitMS() {
					best = i
				}
			}
			if best != 0 {
				g.met.steals.Add(1)
				cands[0], cands[best] = cands[best], cands[0]
			}
		}
	}
	return cands
}

// Handler returns the gateway's /v1 API mux — the same surface a single
// srvd node serves, so clients (and srvbench -remote) cannot tell the
// difference.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sims", g.handleSubmit)
	mux.HandleFunc("GET /v1/sims/{id}", g.handleStatus)
	mux.HandleFunc("GET /v1/sims/{id}/stream", g.handleStream)
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	mux.HandleFunc("GET /v1/trace", g.handleTrace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.met.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// handleSubmit admits one harness.Request at the edge: mirror the node-side
// guards (size, validity), answer repeats from the gateway-tier cache, then
// route by CacheKey and forward — handing off along the ring when the owner
// is draining, over capacity, or unreachable. ?wait=1 stays synchronous end
// to end. The whole exchange lives under one TraceID: the caller's
// traceparent (or a fresh trace) parents the gateway's route span, which in
// turn parents the owning node's admission span.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	arrived := time.Now()
	parent, propagated := obsv.ParseTraceparent(r.Header.Get("traceparent"))
	if !propagated {
		parent = obsv.NewTrace()
	}
	route := parent.Child()
	routed := func(outcome string, attrs map[string]string) {
		if attrs == nil {
			attrs = map[string]string{}
		}
		attrs["outcome"] = outcome
		g.spans.Record(obsv.Span{
			Trace: parent.Trace, ID: route.Span, Parent: parent.Span,
			Name: "gateway.route", Start: arrived, End: time.Now(), Attrs: attrs,
		})
	}

	if g.cfg.MaxInflightBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxInflightBytes)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			g.met.shedOversize.Add(1)
			routed("oversize", nil)
			serve.WriteError(w, serve.CodeBodyTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		g.met.invalid.Add(1)
		routed("invalid", nil)
		serve.WriteError(w, serve.CodeInvalidRequest, "reading request: %v", err)
		return
	}
	var req harness.Request
	if err := json.Unmarshal(body, &req); err != nil {
		g.met.invalid.Add(1)
		routed("invalid", nil)
		serve.WriteError(w, serve.CodeInvalidRequest, "decoding request: %v", err)
		return
	}

	// Tenant identity: the header overrides the body, and the resolved value
	// is stamped back into the request so the owning node sees the same
	// principal the gateway accounted for.
	tenant := req.Tenant
	if h := r.Header.Get(serve.HeaderTenant); h != "" {
		tenant = h
	}
	req.Tenant = tenant
	if ok, wait := g.quotas.AdmitRate(tenant); !ok {
		g.met.shedQuota.Add(1)
		routed("quota-rate", map[string]string{"tenant": tenant})
		serve.WriteErrorRetry(w, serve.CodeOverCapacity, wait,
			"tenant %q over submission rate quota", tenantLabel(tenant))
		return
	}

	// The caller's deadline (relative ms) becomes absolute here; each forward
	// attempt re-derives the remaining time, so a slow hand-off walk shrinks
	// what the node is promised, never stretches it.
	var deadline time.Time
	if h := r.Header.Get(serve.HeaderDeadlineMS); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil {
			if ms <= 0 {
				g.met.shedDeadline.Add(1)
				routed("deadline-expired", nil)
				serve.WriteError(w, serve.CodeTimeout, "deadline already expired on arrival")
				return
			}
			deadline = arrived.Add(time.Duration(ms) * time.Millisecond)
		}
	}

	creq, err := req.Canonical()
	if err != nil {
		g.met.invalid.Add(1)
		routed("invalid", nil)
		serve.WriteError(w, serve.CodeInvalidRequest, "%v", err)
		return
	}
	key, err := creq.CacheKey()
	if err != nil {
		routed("hash-error", nil)
		serve.WriteError(w, serve.CodeInternal, "hashing request: %v", err)
		return
	}
	canonical, err := json.Marshal(creq)
	if err != nil {
		routed("encode-error", nil)
		serve.WriteError(w, serve.CodeInternal, "encoding request: %v", err)
		return
	}

	// The hand-off budget is the configured cap, lowered (never raised) by
	// the caller's remaining retry budget: a client on its last attempt gets
	// one forward and no storm.
	budget := g.cfg.HandoffBudget
	if h := r.Header.Get(serve.HeaderRetryBudget); h != "" {
		if b, err := strconv.Atoi(h); err == nil && b >= 0 && b < budget {
			budget = b
		}
	}

	id := fmt.Sprintf("gw-%06d", g.nextID.Add(1))
	j := &gwJob{
		id: id, key: key, body: canonical,
		mode: creq.Mode, bench: creq.Bench,
		tenant: tenant, bodyBytes: int64(len(body)),
		deadline: deadline, budget: budget,
		trace:     obsv.SpanContext{Trace: parent.Trace, Span: route.Span},
		submitted: arrived,
		// Nothing is charged against the tenant yet: the byte quota is only
		// admitted after a cache miss, so "released" starts true and flips
		// once the charge lands.
		released: true,
	}
	g.mu.Lock()
	g.jobs[id] = j
	g.mu.Unlock()

	// Tier 1: the gateway's own LRU answers repeats without a network hop.
	if data, ok := g.cache.Get(key); ok {
		g.met.cacheHits.Add(1)
		now := time.Now()
		st := serve.JobStatus{
			ID: id, State: serve.StateDone, Mode: creq.Mode, Bench: creq.Bench,
			CacheKey: key, Cached: true, TraceID: parent.Trace.String(),
			Node: g.cfg.NodeID, SubmittedAt: arrived,
			StartedAt: &now, FinishedAt: &now, Result: data,
		}
		j.setFinal(st)
		routed("cache-hit", map[string]string{"cache_key": key})
		g.logger.Info("job served from gateway cache",
			"trace_id", parent.Trace.String(), "job", id, "cache_key", key)
		serve.WriteJSON(w, http.StatusOK, st)
		return
	}
	g.met.cacheMisses.Add(1)

	// In-flight-bytes quota, charged only for work that will actually travel
	// to a node (cache hits above are free); released when the job reaches a
	// terminal state at the gateway or is refused below.
	if !g.quotas.AdmitBytes(tenant, j.bodyBytes) {
		g.met.shedQuota.Add(1)
		routed("quota-bytes", map[string]string{"tenant": tenant})
		serve.WriteErrorRetry(w, serve.CodeOverCapacity, g.cfg.HealthInterval,
			"tenant %q over in-flight bytes quota", tenantLabel(tenant))
		return
	}
	j.released = false

	wait := r.URL.Query().Get("wait")
	syncWait := wait == "1" || wait == "true"
	resp, owner := g.forwardSubmit(r.Context(), j, syncWait)
	if owner == nil {
		g.releaseJob(j)
		if !j.deadline.IsZero() && time.Now().After(j.deadline) {
			g.met.shedDeadline.Add(1)
			routed("deadline-expired", map[string]string{"cache_key": key})
			serve.WriteError(w, serve.CodeTimeout, "deadline expired during forwarding")
			return
		}
		if resp != nil {
			// Every candidate refused in a way hand-off cannot help; the last
			// typed envelope is forwarded untouched.
			routed("refused", map[string]string{"cache_key": key, "status": fmt.Sprint(resp.Status)})
			g.forwardRaw(w, resp)
			return
		}
		g.met.noNodes.Add(1)
		routed("no-nodes", map[string]string{"cache_key": key})
		serve.WriteErrorRetry(w, serve.CodeDraining, g.cfg.HealthInterval,
			"no eligible node for shard (fleet draining or unreachable)")
		return
	}

	g.met.submitted.Add(1)
	if resp.Status/100 != 2 {
		// A terminal failure envelope (failed ?wait=1 job) forwards untouched;
		// remember the node-side job ID so status polls keep working.
		var env struct {
			Error serve.APIError `json:"error"`
		}
		if json.Unmarshal(resp.Body, &env) == nil && env.Error.Job != nil {
			j.setOwner(owner.name, env.Error.Job.ID)
			st := *env.Error.Job
			st.ID, st.Node = id, owner.name
			j.setFinal(st)
		}
		g.releaseJob(j)
		routed("forwarded-error", map[string]string{
			"node": owner.name, "cache_key": key, "status": fmt.Sprint(resp.Status)})
		g.forwardRaw(w, resp)
		return
	}

	var st serve.JobStatus
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		routed("decode-error", map[string]string{"node": owner.name})
		serve.WriteError(w, serve.CodeInternal, "decoding node response: %v", err)
		return
	}
	j.setOwner(owner.name, st.ID)
	st.ID, st.Node = id, owner.name
	if st.State == serve.StateDone && len(st.Result) > 0 {
		g.cache.Put(key, st.Result)
		g.finish(j, st)
	}
	routed("forwarded", map[string]string{"node": owner.name, "job": id, "cache_key": key})
	g.logger.Info("job routed", "trace_id", parent.Trace.String(), "job", id,
		"node", owner.name, "cache_key", key, "sync", syncWait, "handoffs", j.handoffs)
	serve.WriteJSON(w, resp.Status, st)
}

// forwardSubmit walks the job's hand-off order, forwarding the submission
// until a node accepts it. A draining (503) or over-capacity (429) answer
// and any transport failure move on to the next ring owner — this is the
// drain-aware hand-off: a queued job on a dying node is resubmitted, not
// bounced, and determinism + content addressing make the duplicate safe.
// Returns (resp, owner) on acceptance; (lastResp, nil) when every candidate
// refused with a non-hand-offable error; (nil, nil) when no candidate could
// be reached at all.
func (g *Gateway) forwardSubmit(ctx context.Context, j *gwJob, syncWait bool) (*serve.APIResponse, *node) {
	path := "/v1/sims"
	perCall := serve.DefaultPollTimeout
	if syncWait {
		path += "?wait=1"
		perCall = 0 // long poll: simulations can run for minutes
	}
	header := http.Header{}
	header.Set("Content-Type", "application/json")
	header.Set("traceparent", j.trace.Traceparent())
	if j.tenant != "" {
		header.Set(serve.HeaderTenant, j.tenant)
	}
	// Nodes must not hand off further — the gateway owns the walk.
	header.Set(serve.HeaderRetryBudget, "0")

	cands := g.route(j.key, "")
	// The walk is bounded by the hand-off budget: the owner plus at most
	// j.budget successors, so a refused submission cannot storm the fleet.
	if max := 1 + j.budget; len(cands) > max {
		cands = cands[:max]
	}
	var last *serve.APIResponse
	for attempt, n := range cands {
		if attempt > 0 {
			g.met.handoffs.Add(1)
			j.mu.Lock()
			j.handoffs++
			j.mu.Unlock()
		}
		if !j.deadline.IsZero() {
			// Re-derive the remaining time per attempt: a slow hand-off walk
			// shrinks what the node is promised. An exhausted deadline ends
			// the walk — nobody is waiting for the result any more.
			ms := time.Until(j.deadline).Milliseconds()
			if ms <= 0 {
				return last, nil
			}
			header.Set(serve.HeaderDeadlineMS, strconv.FormatInt(ms, 10))
		}
		resp, err := n.client.RoundTrip(ctx, http.MethodPost, path, header, j.body, perCall)
		if err != nil {
			if ctx.Err() != nil {
				return last, nil
			}
			g.logger.Warn("node unreachable, handing off",
				"node", n.name, "job", j.id, "err", err)
			continue
		}
		switch resp.Status {
		case http.StatusServiceUnavailable:
			n.markDraining()
			g.logger.Info("node draining, handing off", "node", n.name, "job", j.id)
			last = resp
			continue
		case http.StatusTooManyRequests:
			last = resp
			continue
		}
		return resp, n
	}
	return last, nil
}

// forwardRaw relays a node response verbatim — body bytes, status, and the
// headers that matter (the typed error envelope's Retry-After especially).
func (g *Gateway) forwardRaw(w http.ResponseWriter, resp *serve.APIResponse) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
}

// lookup resolves a gateway job ID, writing the 404 envelope when unknown.
func (g *Gateway) lookup(w http.ResponseWriter, id string) *gwJob {
	g.mu.RLock()
	j := g.jobs[id]
	g.mu.RUnlock()
	if j == nil {
		serve.WriteError(w, serve.CodeNotFound, "unknown job %q", id)
	}
	return j
}

// handleStatus serves one job's status: terminal statuses straight from the
// gateway, live ones by asking the owning node (rewriting the node's job ID
// and stamping the owner). A vanished owner triggers an immediate rescue.
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := g.lookup(w, r.PathValue("id"))
	if j == nil {
		return
	}
	nodeName, remoteID, final := j.snapshot()
	if final != nil {
		serve.WriteJSON(w, http.StatusOK, *final)
		return
	}
	owner := g.nodes[nodeName]
	if owner == nil || remoteID == "" {
		// Accepted but not yet placed (mid-hand-off): report it queued.
		serve.WriteJSON(w, http.StatusOK, g.queuedStatus(j))
		return
	}
	resp, err := owner.client.RoundTrip(r.Context(), http.MethodGet, "/v1/sims/"+remoteID, nil, nil, serve.DefaultPollTimeout)
	if err != nil || resp.Status == http.StatusNotFound {
		// The owner is gone (or restarted without its journal): resubmit to
		// the next ring owner and report the job queued there.
		if g.rescue(j, nodeName) {
			serve.WriteJSON(w, http.StatusOK, g.queuedStatus(j))
			return
		}
		serve.WriteErrorRetry(w, serve.CodeDraining, g.cfg.HealthInterval,
			"owner of job %s unreachable and no eligible node to rescue to", j.id)
		return
	}
	if resp.Status/100 != 2 {
		g.forwardRaw(w, resp)
		return
	}
	var st serve.JobStatus
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		serve.WriteError(w, serve.CodeInternal, "decoding node response: %v", err)
		return
	}
	st.ID, st.Node = j.id, owner.name
	if st.State == serve.StateDone && len(st.Result) > 0 {
		g.cache.Put(j.key, st.Result)
		g.finish(j, st)
	} else if st.State == serve.StateFailed {
		g.finish(j, st)
	}
	serve.WriteJSON(w, http.StatusOK, st)
}

// queuedStatus synthesises the status of a job the gateway has accepted but
// whose owner cannot answer right now.
func (g *Gateway) queuedStatus(j *gwJob) serve.JobStatus {
	nodeName, _, _ := j.snapshot()
	return serve.JobStatus{
		ID: j.id, State: serve.StateQueued, Mode: j.mode, Bench: j.bench,
		CacheKey: j.key, TraceID: j.trace.Trace.String(), Node: nodeName,
		SubmittedAt: j.submitted,
	}
}

// handleStream proxies the owning node's NDJSON stream line by line,
// rewriting the terminal JobStatus to the gateway's job identity. Terminal
// jobs answer immediately with their final status line.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	j := g.lookup(w, r.PathValue("id"))
	if j == nil {
		return
	}
	nodeName, remoteID, final := j.snapshot()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if final != nil {
		w.WriteHeader(http.StatusOK)
		_ = enc.Encode(*final)
		return
	}
	owner := g.nodes[nodeName]
	if owner == nil || remoteID == "" {
		w.WriteHeader(http.StatusOK)
		_ = enc.Encode(g.queuedStatus(j))
		return
	}
	hreq, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		owner.client.Base()+"/v1/sims/"+remoteID+"/stream", nil)
	if err != nil {
		serve.WriteError(w, serve.CodeInternal, "building stream request: %v", err)
		return
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		serve.WriteError(w, serve.CodeDraining, "owner of job %s unreachable: %v", j.id, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		g.forwardRaw(w, &serve.APIResponse{Status: resp.StatusCode, Header: resp.Header, Body: body})
		return
	}
	w.WriteHeader(http.StatusOK)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var st serve.JobStatus
		if err := json.Unmarshal(line, &st); err == nil && st.ID == remoteID && st.State != "" {
			st.ID, st.Node = j.id, owner.name
			if st.State == serve.StateDone && len(st.Result) > 0 {
				g.cache.Put(j.key, st.Result)
				g.finish(j, st)
			}
			_ = enc.Encode(st)
		} else {
			_, _ = w.Write(append(line, '\n'))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// rescueOrphans resubmits every live job whose owner has become ineligible
// (draining, ejected, or failing health polls) to the next ring owner — the
// drain-aware hand-off for asynchronous jobs whose submitter is long gone.
func (g *Gateway) rescueOrphans() {
	g.mu.RLock()
	jobs := make([]*gwJob, 0, len(g.jobs))
	for _, j := range g.jobs {
		jobs = append(jobs, j)
	}
	g.mu.RUnlock()
	for _, j := range jobs {
		nodeName, remoteID, final := j.snapshot()
		if final != nil || remoteID == "" {
			continue
		}
		owner := g.nodes[nodeName]
		if owner != nil && owner.eligible() {
			continue
		}
		g.rescue(j, nodeName)
	}
}

// rescue resubmits one job to the next eligible ring owner after exclude.
// The duplicate submission is safe: the request is content-addressed and
// the simulator deterministic, so whichever node finishes first populates
// the caches with the byte-identical Result.
func (g *Gateway) rescue(j *gwJob, exclude string) bool {
	header := http.Header{}
	header.Set("Content-Type", "application/json")
	header.Set("traceparent", j.trace.Traceparent())
	if j.tenant != "" {
		header.Set(serve.HeaderTenant, j.tenant)
	}
	header.Set(serve.HeaderRetryBudget, "0")
	cands := g.route(j.key, exclude)
	if max := 1 + g.cfg.HandoffBudget; len(cands) > max {
		cands = cands[:max]
	}
	for _, n := range cands {
		ctx, cancel := context.WithTimeout(g.ctx, serve.DefaultPollTimeout)
		resp, err := n.client.RoundTrip(ctx, http.MethodPost, "/v1/sims", header, j.body, serve.DefaultPollTimeout)
		cancel()
		if err != nil {
			continue
		}
		switch resp.Status {
		case http.StatusServiceUnavailable:
			n.markDraining()
			continue
		case http.StatusTooManyRequests:
			continue
		}
		if resp.Status/100 != 2 {
			continue
		}
		var st serve.JobStatus
		if err := json.Unmarshal(resp.Body, &st); err != nil {
			continue
		}
		g.met.rescued.Add(1)
		j.mu.Lock()
		j.node, j.remoteID = n.name, st.ID
		j.handoffs++
		j.mu.Unlock()
		if st.State == serve.StateDone && len(st.Result) > 0 {
			st.ID, st.Node = j.id, n.name
			g.cache.Put(j.key, st.Result)
			g.finish(j, st)
		}
		g.logger.Info("job rescued", "job", j.id, "from", exclude, "to", n.name,
			"trace_id", j.trace.Trace.String())
		return true
	}
	g.logger.Warn("job stranded: no eligible node to rescue to", "job", j.id, "from", exclude)
	return false
}

// Health is the gateway's /v1/healthz payload: the node-compatible summary
// (so srvd-aware tooling reads it unchanged) plus per-node detail.
type Health struct {
	serve.Health
	Nodes []NodeStatus `json:"nodes"`
}

// brownoutSteps orders the serve brownout names for fleet aggregation;
// brownoutStepNames is its inverse.
var (
	brownoutSteps     = map[string]int{"": 0, "shed-low": 1, "no-new-work": 2, "cached-only": 3}
	brownoutStepNames = [...]string{"", "shed-low", "no-new-work", "cached-only"}
)

// minBrownoutStep is the fleet's effective brownout: the lowest step among
// eligible nodes, because a submission is routed to the least-degraded node
// that will take it. No eligible nodes reads as 0 — "draining" already says
// everything.
func (g *Gateway) minBrownoutStep() int {
	min := -1
	for _, name := range g.order {
		n := g.nodes[name]
		if !n.eligible() {
			continue
		}
		step := brownoutSteps[n.brownout()]
		if min < 0 || step < min {
			min = step
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Health: serve.Health{
			Status:        "ok",
			State:         "serving",
			SchemaVersion: harness.SchemaVersion,
			CodeVersion:   harness.CodeVersion,
			UptimeSeconds: time.Since(g.started).Seconds(),
			CacheEntries:  g.cache.Len(),
			Node:          g.cfg.NodeID,
		},
	}
	eligible := 0
	minWait := -1.0
	for _, name := range g.order {
		n := g.nodes[name]
		st := n.status()
		h.Nodes = append(h.Nodes, st)
		h.Workers += st.Workers
		h.QueueDepth += st.QueueDepth
		h.JournalLag += st.JournalLag
		if n.eligible() {
			eligible++
			if minWait < 0 || st.PredictedWaitMS < minWait {
				minWait = st.PredictedWaitMS
			}
		}
	}
	// The gateway's own predicted wait is the best any routed submission
	// could see: the least-loaded eligible node's.
	if minWait > 0 {
		h.PredictedWaitMS = minWait
	}
	if eligible == 0 {
		h.State = "draining"
	}
	h.Brownout = brownoutStepNames[g.minBrownoutStep()]
	serve.WriteJSON(w, http.StatusOK, h)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", obsv.PromContentType)
		_ = g.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = g.reg.WriteJSON(w)
}

func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "perfetto" {
		w.Header().Set("Content-Type", "application/json")
		_ = g.spans.WriteTrace(w)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = g.spans.WriteNDJSON(w)
}

// tenantLabel renders a tenant identity for humans: the default tenant's
// empty string reads as "default".
func tenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// discardHandler mirrors serve's nil-logger sink.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
