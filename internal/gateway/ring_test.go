package gateway

import (
	"fmt"
	"testing"
)

// testKeys builds n distinct content-address-shaped keys (the ring hashes
// strings; real callers pass harness CacheKeys, which are hex digests).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064x", i*2654435761)
	}
	return keys
}

// TestRingUniformity: over 1k keys and 4 nodes, every node's share must be
// within a factor of two of the fair share — the level of balance 128
// vnodes buys, and what keeps one node from becoming the fleet hotspot.
func TestRingUniformity(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := testKeys(1000)
	counts := map[string]int{}
	for _, k := range keys {
		owner := r.Owner(k)
		if owner == "" {
			t.Fatalf("key %q has no owner", k)
		}
		counts[owner]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): distribution too skewed (%v)",
				n, c, len(keys), fair, counts)
		}
	}
}

// TestRingMinimalRemap: adding or removing one node must remap only about
// 1/N of the keys — the property that preserves fleet-wide cache locality
// across membership changes.
func TestRingMinimalRemap(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	keys := testKeys(1000)

	before := NewRing(0)
	for _, n := range nodes[:3] {
		before.Add(n)
	}
	owners := map[string]string{}
	for _, k := range keys {
		owners[k] = before.Owner(k)
	}

	// Add a fourth node: moved keys must all move TO it, and their number
	// must be near 1/4 (within 2x, the vnode variance envelope).
	before.Add(nodes[3])
	moved := 0
	for _, k := range keys {
		if now := before.Owner(k); now != owners[k] {
			moved++
			if now != nodes[3] {
				t.Fatalf("key %q moved %s -> %s on ADD of %s: only the new node may gain keys",
					k, owners[k], now, nodes[3])
			}
		}
	}
	if max := 2 * len(keys) / 4; moved > max {
		t.Fatalf("adding 1 of 4 nodes remapped %d/%d keys, want <= %d (~1/N)", moved, len(keys), max)
	}
	if moved == 0 {
		t.Fatal("adding a node remapped nothing — it owns no shard")
	}

	// Remove it again: ownership must return exactly to the 3-node map
	// (remap on remove = only the removed node's keys, redistributed).
	before.Remove(nodes[3])
	for _, k := range keys {
		if now := before.Owner(k); now != owners[k] {
			t.Fatalf("key %q owned by %s after add+remove round trip, want %s", k, now, owners[k])
		}
	}
}

// TestRingJoinOrderIndependent: ownership is a pure function of the member
// set — every insertion order yields the identical key→node map.
func TestRingJoinOrderIndependent(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
	keys := testKeys(300)

	var want map[string]string
	for _, order := range orders {
		r := NewRing(0)
		for _, i := range order {
			r.Add(nodes[i])
		}
		got := map[string]string{}
		for _, k := range keys {
			got[k] = r.Owner(k)
		}
		if want == nil {
			want = got
			continue
		}
		for _, k := range keys {
			if got[k] != want[k] {
				t.Fatalf("join order %v assigns %q to %s; first order assigned %s", order, k, got[k], want[k])
			}
		}
	}

	// Arriving at the same member set via add+remove churn must also agree.
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	r.Remove(nodes[1])
	r.Add(nodes[1])
	for _, k := range keys {
		if got := r.Owner(k); got != want[k] {
			t.Fatalf("after churn, key %q owned by %s, want %s", k, got, want[k])
		}
	}
}

// TestRingSuccessors: the hand-off order starts at the owner, visits every
// node exactly once, and an empty ring yields nothing.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(0)
	if got := r.Successors("k", 3); got != nil {
		t.Fatalf("empty ring returned successors %v", got)
	}
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, n := range nodes {
		r.Add(n)
	}
	for _, k := range testKeys(50) {
		succ := r.Successors(k, len(nodes))
		if len(succ) != len(nodes) {
			t.Fatalf("key %q: %d successors, want %d", k, len(succ), len(nodes))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("key %q: successor walk starts at %s, owner is %s", k, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: node %s appears twice in %v", k, s, succ)
			}
			seen[s] = true
		}
	}
}
