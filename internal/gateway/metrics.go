package gateway

import (
	"fmt"
	"sync/atomic"

	"srvsim/internal/obsv"
)

// gwMetrics aggregates the gateway counters exported at /v1/metrics —
// the same collect-on-scrape discipline as the node-side serve.metrics:
// handlers bump atomics, the registry reads them only when scraped.
type gwMetrics struct {
	requests     atomic.Int64 // HTTP requests accepted (any endpoint)
	submitted    atomic.Int64 // submissions accepted by some node
	invalid      atomic.Int64 // submissions refused with 400 at the edge
	shedOversize atomic.Int64 // submissions shed with 413 at the edge
	cacheHits    atomic.Int64 // submissions answered from the gateway-tier cache
	cacheMisses  atomic.Int64 // submissions that went to a node
	shedQuota    atomic.Int64 // submissions refused at the edge: tenant over rate or in-flight-bytes quota
	shedDeadline atomic.Int64 // submissions refused at the edge: caller deadline expired
	handoffs     atomic.Int64 // forwards moved to the next ring owner (drain/unreachable/429)
	steals       atomic.Int64 // submissions stolen from an overloaded owner
	rescued      atomic.Int64 // orphaned jobs resubmitted to a new owner
	noNodes      atomic.Int64 // submissions refused 503 with no eligible node
	healthPolls  atomic.Int64 // fleet health-poll rounds completed
}

// registry builds the obsv view over the gateway counters plus per-node
// eligibility and load gauges (one row per configured node, labelled by
// index so the metric names stay Prometheus-safe regardless of the URL).
func (m *gwMetrics) registry(g *Gateway) *obsv.Registry {
	reg := obsv.NewRegistry()
	s := reg.Section("gateway")
	s.CounterFn("gateway.http_requests", "HTTP requests accepted across all endpoints", m.requests.Load)
	s.CounterFn("gateway.jobs_submitted", "submissions accepted by a fleet node", m.submitted.Load)
	s.CounterFn("gateway.jobs_rejected_invalid", "submissions refused as invalid at the edge", m.invalid.Load)
	s.CounterFn("gateway.jobs_shed_oversize", "submissions shed for body size at the edge", m.shedOversize.Load)
	s.CounterFn("gateway.jobs_shed_quota", "submissions refused at the edge because the tenant was over a quota", m.shedQuota.Load)
	s.CounterFn("gateway.jobs_expired_deadline", "submissions refused at the edge because the caller deadline expired", m.shedDeadline.Load)
	s.Gauge("gateway.brownout_step", "lowest brownout step among eligible nodes (0 serving)", "%.0f", func() float64 {
		return float64(g.minBrownoutStep())
	})
	s.CounterFn("gateway.handoffs", "forwards handed off to the next ring owner", m.handoffs.Load)
	s.CounterFn("gateway.jobs_stolen", "submissions stolen from an overloaded shard owner", m.steals.Load)
	s.CounterFn("gateway.jobs_rescued", "orphaned jobs resubmitted after their owner drained or died", m.rescued.Load)
	s.CounterFn("gateway.no_eligible_node", "submissions refused because no node was eligible", m.noNodes.Load)
	s.CounterFn("gateway.health_polls", "fleet health-poll rounds completed", m.healthPolls.Load)
	s.CounterFn("gateway.jobs_tracked", "jobs the gateway is tracking", func() int64 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		return int64(len(g.jobs))
	})
	c := reg.Section("gateway.cache")
	c.CounterFn("gateway.cache.hits", "submissions answered from the gateway-tier result cache", m.cacheHits.Load)
	c.CounterFn("gateway.cache.misses", "submissions forwarded to a node", m.cacheMisses.Load)
	c.CounterFn("gateway.cache.entries", "results currently held by the gateway-tier cache", func() int64 {
		return int64(g.cache.Len())
	})
	nodes := reg.Section("gateway.node")
	for i, name := range g.order {
		n := g.nodes[name]
		prefix := fmt.Sprintf("gateway.node.%d", i)
		nodes.Gauge(prefix+".eligible", "1 when the gateway routes to "+name, "%.0f", func() float64 {
			if n.eligible() {
				return 1
			}
			return 0
		})
		nodes.Gauge(prefix+".predicted_wait_ms", "last reported queue-wait prediction of "+name, "%.3f",
			n.predictedWaitMS)
	}
	tr := reg.Section("gateway.trace")
	tr.CounterFn("gateway.trace.spans", "request spans buffered for GET /v1/trace", func() int64 {
		return int64(g.spans.Len())
	})
	tr.CounterFn("gateway.trace.spans_dropped", "request spans dropped because the buffer was full", g.spans.Dropped)
	return reg
}
