package gateway

import (
	"context"
	"sync"
	"time"

	"srvsim/internal/serve"
)

// node is one srvd member of the fleet: its resilient client (whose per-host
// circuit breaker doubles as the gateway's eject/readmit signal) plus the
// last health snapshot the poll loop took.
type node struct {
	name   string // ring identity: the configured address
	client *serve.Client

	mu       sync.Mutex
	healthy  bool // last health poll succeeded
	draining bool // node reported state=draining, or answered a submit with 503
	failures int  // consecutive failed health polls
	health   serve.Health
	lastSeen time.Time
}

// newNode dials nothing — the client is lazy. Forwarded calls retry once on
// transport errors (hand-off to the next ring owner is the real fallback,
// not backoff), and the breaker ejects the node after a few consecutive
// transport failures.
func newNode(name string) *node {
	return &node{
		name: name,
		client: serve.NewClient(name,
			serve.WithRetry(serve.RetryPolicy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond, MaxDelay: 250 * time.Millisecond}),
			serve.WithBreaker(3, 2*time.Second),
		),
	}
}

// poll refreshes the node's health snapshot. A node is readmitted the moment
// a poll succeeds again — the client's half-open breaker probe is what lets
// that poll through after an ejection.
func (n *node) poll(ctx context.Context, timeout time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	h, err := n.client.Health(pctx)
	n.mu.Lock()
	defer n.mu.Unlock()
	if err != nil {
		n.healthy = false
		n.failures++
		return
	}
	n.healthy = true
	n.failures = 0
	n.draining = h.State == "draining"
	n.health = h
	n.lastSeen = time.Now()
}

// markDraining records that the node answered a submission with 503
// (draining) — the poll loop will rescue its queued jobs.
func (n *node) markDraining() {
	n.mu.Lock()
	n.draining = true
	n.mu.Unlock()
}

// eligible reports whether the gateway should route new work here: the
// circuit must be closed, the node not draining, and the last poll healthy.
// A node that was never polled yet (fresh gateway) is given the benefit of
// the doubt — the submit path discovers the truth and hands off if needed.
func (n *node) eligible() bool {
	if n.client.CircuitOpen() {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.draining {
		return false
	}
	return n.healthy || n.lastSeen.IsZero()
}

// predictedWaitMS returns the node's last-reported queue-wait prediction
// (the serve EWMA × depth ÷ workers signal) — what work-stealing compares
// against the threshold.
func (n *node) predictedWaitMS() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.health.PredictedWaitMS
}

// NodeStatus is one fleet member's row in the gateway's /v1/healthz payload.
type NodeStatus struct {
	Name        string `json:"name"`
	Healthy     bool   `json:"healthy"`
	Draining    bool   `json:"draining"`
	CircuitOpen bool   `json:"circuit_open"`
	// Node is the member's own NodeID as it reports it (srvd -node-id),
	// which need not equal Name (the address the gateway dials).
	Node            string  `json:"node,omitempty"`
	Workers         int     `json:"workers"`
	QueueDepth      int64   `json:"queue_depth"`
	PredictedWaitMS float64 `json:"predicted_wait_ms"`
	JournalLag      int64   `json:"journal_lag"`
	// Brownout is the node's self-reported degradation step name (empty when
	// serving normally). Additive: seed-era nodes never report one.
	Brownout string `json:"brownout,omitempty"`
}

// status snapshots the node for /v1/healthz.
func (n *node) status() NodeStatus {
	open := n.client.CircuitOpen()
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStatus{
		Name:            n.name,
		Healthy:         n.healthy,
		Draining:        n.draining,
		CircuitOpen:     open,
		Node:            n.health.Node,
		Workers:         n.health.Workers,
		QueueDepth:      n.health.QueueDepth,
		PredictedWaitMS: n.health.PredictedWaitMS,
		JournalLag:      n.health.JournalLag,
		Brownout:        n.health.Brownout,
	}
}

// brownout returns the node's last-reported brownout step name.
func (n *node) brownout() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.health.Brownout
}
