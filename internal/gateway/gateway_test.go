package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"srvsim/internal/harness"
	"srvsim/internal/obsv"
	"srvsim/internal/serve"
	"srvsim/internal/workloads"
)

func testLoopReq(seed int64) harness.Request {
	return harness.Request{
		Mode: harness.ModeLoop, Bench: "svc", Seed: seed,
		Loop: &workloads.LoopSpec{Weight: 1, Shape: workloads.Shape{
			Name: "svc", Trip: 256, Contig: 1, Chain: 1,
			Pattern: workloads.PatIdentity, ReadSelf: true, StoreVia: true,
		}},
	}
}

// fleet is an in-process gateway over n in-process srvd nodes.
type fleet struct {
	nodes   []*serve.Server
	servers []*httptest.Server
	gw      *Gateway
	front   *httptest.Server
}

func startFleet(t *testing.T, n int, cfg Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		srv, err := serve.New(serve.Config{NodeID: fmt.Sprintf("node-%d", i), Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		ts := httptest.NewServer(srv.Handler())
		f.nodes = append(f.nodes, srv)
		f.servers = append(f.servers, ts)
		cfg.Nodes = append(cfg.Nodes, ts.URL)
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	f.gw = gw
	f.front = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		f.front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = gw.Shutdown(ctx)
		for i, ts := range f.servers {
			ts.Close()
			_ = f.nodes[i].Shutdown(ctx)
		}
	})
	return f
}

// TestFleetDrainHandoff is the fleet acceptance drill as a -race test: a
// 3-node fleet takes a queue of jobs, one node drains mid-queue (the
// SIGTERM path), and every job must still complete with the byte-identical
// result local execution produces — zero lost jobs, no client-visible 503s.
func TestFleetDrainHandoff(t *testing.T) {
	f := startFleet(t, 3, Config{})
	c := serve.NewClient(f.front.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	reqs := make([]harness.Request, 10)
	for i := range reqs {
		reqs[i] = testLoopReq(int64(500 + i))
		reqs[i].Loop.Shape.Trip = 1 << 11
	}
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if !strings.HasPrefix(st.ID, "gw-") {
			t.Fatalf("submit %d: want a gateway job ID, got %q", i, st.ID)
		}
		if st.Node == "" {
			t.Fatalf("submit %d: status carries no owning node", i)
		}
		ids[i] = st.ID
	}

	// Drain node 0 mid-queue; its unstarted jobs must be handed off.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if err := f.nodes[0].Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	results := make([][]byte, len(reqs))
	for i, id := range ids {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			st, err := c.Status(ctx, id)
			if err != nil {
				t.Fatalf("status %s: %v", id, err)
			}
			if st.State == serve.StateFailed {
				t.Fatalf("job %s failed: %s", id, st.Error)
			}
			if st.State == serve.StateDone {
				results[i] = st.Result
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s after drain", id, st.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	for i, req := range reqs {
		local, err := harness.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(local)
		var got harness.Result
		if err := json.Unmarshal(results[i], &got); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		gotBytes, _ := json.Marshal(got)
		if !bytes.Equal(gotBytes, want) {
			t.Fatalf("request %d diverged through the fleet:\n  %s\n  %s", i, gotBytes, want)
		}
	}
}

// TestGatewayCacheTier: a repeat submission is answered from the gateway's
// own LRU — no node hop — and still byte-identical.
func TestGatewayCacheTier(t *testing.T) {
	f := startFleet(t, 2, Config{})
	c := serve.NewClient(f.front.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	req := testLoopReq(7)
	first, err := c.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Fatalf("repeat submission not served from cache: %+v", st)
	}
	if hits := f.gw.Registry().Lookup("gateway.cache.hits"); hits == nil || hits.Int() != 1 {
		t.Fatalf("gateway.cache.hits != 1 after repeat submission")
	}
	var second harness.Result
	if err := json.Unmarshal(st.Result, &second); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Fatalf("gateway cache returned different bytes:\n  %s\n  %s", a, b)
	}
}

// TestGatewayForwardsErrorEnvelope: edge-side refusals and node-side
// failures both reach the client as the one typed envelope shape — the
// node's envelope travelling through the gateway untouched.
func TestGatewayForwardsErrorEnvelope(t *testing.T) {
	f := startFleet(t, 2, Config{})
	c := serve.NewClient(f.front.URL, serve.WithRetry(serve.RetryPolicy{MaxAttempts: 1}))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Edge refusal: an invalid request never reaches a node.
	_, err := c.Do(ctx, harness.Request{Mode: "nonsense"})
	if !errors.Is(err, harness.ErrInvalidRequest) {
		t.Fatalf("invalid request did not unwrap to ErrInvalidRequest: %v", err)
	}

	// Node-side typed failure: a compile-rejected request's SimError must
	// round-trip through node envelope → gateway → client.
	bad := testLoopReq(9)
	bad.Loop.Shape.Trip = 0 // rejected by validation at the edge or node
	if _, err := c.Do(ctx, bad); err == nil {
		t.Fatal("degenerate loop spec was accepted")
	}

	// Unknown job: the gateway's own 404 envelope carries the stable code.
	_, err = c.Status(ctx, "gw-999999")
	var he *serve.HTTPError
	if !errors.As(err, &he) || he.Code != serve.CodeNotFound {
		t.Fatalf("unknown job error = %v, want code %q", err, serve.CodeNotFound)
	}
}

// TestGatewayOneTraceEndToEnd: a traced submission through the fleet yields
// client, gateway and node spans all under one TraceID.
func TestGatewayOneTraceEndToEnd(t *testing.T) {
	f := startFleet(t, 2, Config{})
	rec := obsv.NewSpanRecorder(0)
	c := serve.NewClient(f.front.URL, serve.WithSpanRecorder(rec))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if _, err := c.Do(ctx, testLoopReq(11)); err != nil {
		t.Fatal(err)
	}
	client := rec.Snapshot()
	if len(client) != 1 {
		t.Fatalf("client recorded %d spans, want 1", len(client))
	}
	trace := client[0].Trace

	var route *obsv.Span
	for _, sp := range f.gw.Spans().Snapshot() {
		if sp.Trace == trace && sp.Name == "gateway.route" {
			sp := sp
			route = &sp
		}
	}
	if route == nil {
		t.Fatalf("no gateway.route span under trace %s", trace)
	}
	if route.Parent != client[0].ID {
		t.Fatalf("gateway span parents %s, want the client span %s", route.Parent, client[0].ID)
	}

	// Some node recorded the execute stage under the same trace, parented
	// (transitively) by the gateway's route span.
	found := false
	for _, srv := range f.nodes {
		for _, sp := range srv.Spans().Snapshot() {
			if sp.Trace == trace && sp.Name == "execute" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no node execute span under trace %s", trace)
	}
}

// TestGatewayWorkStealing: with the owner's predicted wait pushed over the
// threshold, a new submission is routed to the least-loaded node instead.
func TestGatewayWorkStealing(t *testing.T) {
	f := startFleet(t, 2, Config{StealThreshold: 100 * time.Millisecond})
	c := serve.NewClient(f.front.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Find which node owns this key, then fake a deep backlog on it.
	req := testLoopReq(21)
	creq, err := req.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	key, err := creq.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	owner := f.gw.ring.Owner(key)
	n := f.gw.nodes[owner]
	n.mu.Lock()
	n.health.PredictedWaitMS = 10_000 // well past the 100ms threshold
	n.mu.Unlock()

	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.Node == owner {
		t.Fatalf("submission stayed on overloaded owner %s", owner)
	}
	if steals := f.gw.Registry().Lookup("gateway.jobs_stolen"); steals == nil || steals.Int() == 0 {
		t.Fatal("gateway.jobs_stolen did not advance")
	}
}

// TestGatewayStream: the NDJSON stream proxies through with the terminal
// status rewritten to the gateway's job identity.
func TestGatewayStream(t *testing.T) {
	f := startFleet(t, 2, Config{})
	c := serve.NewClient(f.front.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	st, err := c.Submit(ctx, testLoopReq(31))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		cur, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == serve.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", st.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := f.front.Client().Get(f.front.URL + "/v1/sims/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last serve.JobStatus
	dec := json.NewDecoder(resp.Body)
	lines := 0
	for dec.More() {
		var probe serve.JobStatus
		if err := dec.Decode(&probe); err != nil {
			t.Fatalf("stream line %d: %v", lines, err)
		}
		if probe.State != "" {
			last = probe
		}
		lines++
	}
	if last.ID != st.ID {
		t.Fatalf("terminal stream line carries ID %q, want the gateway ID %q", last.ID, st.ID)
	}
	if last.State != serve.StateDone {
		t.Fatalf("terminal stream line state %q", last.State)
	}
	if last.Node == "" {
		t.Fatal("terminal stream line carries no owning node")
	}
}
