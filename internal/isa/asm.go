package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a textual assembly format with a parser
// (Assemble) and a canonical printer (Disassemble) that round-trip:
// Assemble(Disassemble(p)) reproduces p exactly.
//
// Syntax, one instruction per line ("; ..." comments, "name:" labels):
//
//	movi s0, 42
//	addi s0, s0, 16
//	blt s0, s1, loop
//	v_add v2, v0, v1 ?p3        ; governing predicate p3
//	f.v_mul v2, v0, v1          ; FP-class op
//	load s5, [s2+8], 4          ; elem size as the last operand
//	v_load v0, [s2+0], 4
//	v_gather v0, [s2+v1*4+0]
//	v_scatter [s2+v1*4+0], v0
//	srv_start up                ; or "down"
//	srv_end

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// operand kinds per opcode, used by both printer and parser.
type operandForm int

const (
	formNone     operandForm = iota // nop, halt, srv_end
	formSRVStart                    // srv_start up|down
	formRdImm                       // movi s0, 42
	formRdRs                        // mov s0, s1
	formRdRsRs                      // add s0, s1, s2
	formRdRsImm                     // addi s0, s1, 16 / shifts
	formBranch                      // beq s1, s2, label
	formJmp                         // jmp label
	formLoad                        // load s0, [s1+imm], elem
	formStore                       // store [s1+imm], s2, elem
	formVLoad                       // v_load v0, [s1+imm], elem
	formVStore                      // v_store [s1+imm], v2, elem
	formGather                      // v_gather v0, [s1+v2*elem+imm]
	formScatter                     // v_scatter [s1+v2*elem+imm], v3
	formVBcast                      // v_bcast v0, [s1+imm], elem
	formVRdVs                       // v_mov v0, v1
	formVRdVsVs                     // v_add v0, v1, v2
	formVRdVsImm                    // v_addi v0, v1, 2
	formVRdVsRs                     // v_adds v0, v1, s2
	formVRdRs                       // v_splat v0, s1
	formPRd                         // p_true p0
	formPRdPs                       // p_not p0, p1
	formPRdPsPs                     // p_and p0, p1, p2
	formPRdVsVs                     // v_cmplt p0, v1, v2 / v_conflict
)

var opForm = map[Op]operandForm{
	OpNop: formNone, OpHalt: formNone, OpSRVEnd: formNone,
	OpSRVStart: formSRVStart,
	OpMovI:     formRdImm,
	OpMov:      formRdRs,
	OpAdd:      formRdRsRs, OpSub: formRdRsRs, OpMul: formRdRsRs,
	OpAnd: formRdRsRs, OpOr: formRdRsRs, OpXor: formRdRsRs,
	OpAddI: formRdRsImm, OpShlI: formRdRsImm, OpShrI: formRdRsImm,
	OpJmp: formJmp,
	OpBEQ: formBranch, OpBNE: formBranch, OpBLT: formBranch, OpBGE: formBranch,
	OpLoad: formLoad, OpStore: formStore,
	OpVLoad: formVLoad, OpVStore: formVStore,
	OpVGather: formGather, OpVScatter: formScatter, OpVBcast: formVBcast,
	OpVMov: formVRdVs,
	OpVAdd: formVRdVsVs, OpVSub: formVRdVsVs, OpVMul: formVRdVsVs,
	OpVMulAdd: formVRdVsVs, OpVAnd: formVRdVsVs, OpVXor: formVRdVsVs,
	OpVSel:  formVRdVsVs,
	OpVAddI: formVRdVsImm, OpVMulI: formVRdVsImm, OpVShrI: formVRdVsImm,
	OpVAndI: formVRdVsImm,
	OpVAddS: formVRdVsRs, OpVMulS: formVRdVsRs,
	OpVSplat: formVRdRs, OpVIota: formVRdRs, OpVIotaRev: formVRdRs,
	OpPTrue: formPRd, OpPFalse: formPRd,
	OpPNot: formPRdPs,
	OpPAnd: formPRdPsPs, OpPOr: formPRdPsPs,
	OpVCmpLT: formPRdVsVs, OpVCmpGE: formPRdVsVs, OpVCmpEQ: formPRdVsVs,
	OpVCmpNE: formPRdVsVs, OpVConflict: formPRdVsVs,
}

// Disassemble renders the program in the canonical assembly syntax.
func Disassemble(p *Program) string {
	// Invent labels for branch targets.
	targets := map[int]string{}
	for _, in := range p.Insts {
		if in.IsBranch() {
			if _, ok := targets[in.Tgt]; !ok {
				targets[in.Tgt] = fmt.Sprintf("L%d", in.Tgt)
			}
		}
	}
	var b strings.Builder
	for pc := range p.Insts {
		if l, ok := targets[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		in := &p.Insts[pc]
		b.WriteString("\t")
		if in.FP {
			b.WriteString("f.")
		}
		b.WriteString(in.Op.String())
		if body := asmOperands(in, targets); body != "" {
			b.WriteString(" ")
			b.WriteString(body)
		}
		if in.Pg != NoPred {
			fmt.Fprintf(&b, " ?p%d", in.Pg)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func asmOperands(in *Inst, targets map[int]string) string {
	memS := func() string { return fmt.Sprintf("[s%d%+d]", in.Rs1, in.Imm) }
	memG := func(idx int) string {
		return fmt.Sprintf("[s%d+v%d*%d%+d]", in.Rs1, idx, in.Elem, in.Imm)
	}
	switch opForm[in.Op] {
	case formNone:
		return ""
	case formSRVStart:
		return strings.ToLower(in.Dir.String())
	case formRdImm:
		return fmt.Sprintf("s%d, %d", in.Rd, in.Imm)
	case formRdRs:
		return fmt.Sprintf("s%d, s%d", in.Rd, in.Rs1)
	case formRdRsRs:
		return fmt.Sprintf("s%d, s%d, s%d", in.Rd, in.Rs1, in.Rs2)
	case formRdRsImm:
		return fmt.Sprintf("s%d, s%d, %d", in.Rd, in.Rs1, in.Imm)
	case formJmp:
		return targets[in.Tgt]
	case formBranch:
		return fmt.Sprintf("s%d, s%d, %s", in.Rs1, in.Rs2, targets[in.Tgt])
	case formLoad:
		return fmt.Sprintf("s%d, %s, %d", in.Rd, memS(), in.Elem)
	case formStore:
		return fmt.Sprintf("%s, s%d, %d", memS(), in.Rs2, in.Elem)
	case formVLoad, formVBcast:
		return fmt.Sprintf("v%d, %s, %d", in.Rd, memS(), in.Elem)
	case formVStore:
		return fmt.Sprintf("%s, v%d, %d", memS(), in.Rs2, in.Elem)
	case formGather:
		return fmt.Sprintf("v%d, %s", in.Rd, memG(in.Rs2))
	case formScatter:
		return fmt.Sprintf("%s, v%d", memG(in.Rs2), in.Rs3)
	case formVRdVs:
		return fmt.Sprintf("v%d, v%d", in.Rd, in.Rs1)
	case formVRdVsVs:
		return fmt.Sprintf("v%d, v%d, v%d", in.Rd, in.Rs1, in.Rs2)
	case formVRdVsImm:
		return fmt.Sprintf("v%d, v%d, %d", in.Rd, in.Rs1, in.Imm)
	case formVRdVsRs:
		return fmt.Sprintf("v%d, v%d, s%d", in.Rd, in.Rs1, in.Rs2)
	case formVRdRs:
		return fmt.Sprintf("v%d, s%d", in.Rd, in.Rs1)
	case formPRd:
		return fmt.Sprintf("p%d", in.Rd)
	case formPRdPs:
		return fmt.Sprintf("p%d, p%d", in.Rd, in.Rs1)
	case formPRdPsPs:
		return fmt.Sprintf("p%d, p%d, p%d", in.Rd, in.Rs1, in.Rs2)
	case formPRdVsVs:
		return fmt.Sprintf("p%d, v%d, v%d", in.Rd, in.Rs1, in.Rs2)
	}
	return ""
}

// DataInit is a memory initialisation parsed from a ".data" directive:
// consecutive Elem-sized values starting at Addr.
type DataInit struct {
	Addr   uint64
	Elem   int
	Values []int64
}

// Assemble parses the textual syntax into a Program.
func Assemble(src string) (*Program, error) {
	p, _, err := AssembleWithData(src)
	return p, err
}

// AssembleWithData additionally collects ".data addr, elem, v0, v1, ..."
// directives so a source file can carry its own memory image.
func AssembleWithData(src string) (*Program, []DataInit, error) {
	b := NewBuilder()
	var data []DataInit
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			b.Label(strings.TrimSuffix(line, ":"))
			continue
		}
		if strings.HasPrefix(line, ".data") {
			di, err := parseData(strings.TrimSpace(line[5:]))
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			data = append(data, di)
			continue
		}
		in, err := parseInst(line)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		b.Emit(in)
	}
	p, err := b.Build()
	return p, data, err
}

func parseData(s string) (DataInit, error) {
	var di DataInit
	parts := splitOperands(s)
	if len(parts) < 3 {
		return di, fmt.Errorf(".data needs addr, elem, values...")
	}
	addr, err := parseImm(parts[0])
	if err != nil {
		return di, fmt.Errorf(".data address: %w", err)
	}
	di.Addr = uint64(addr)
	if di.Elem, err = strconv.Atoi(parts[1]); err != nil {
		return di, fmt.Errorf(".data element size: %w", err)
	}
	switch di.Elem {
	case 1, 2, 4, 8:
	default:
		return di, fmt.Errorf(".data element size must be 1, 2, 4 or 8, got %d", di.Elem)
	}
	for _, v := range parts[2:] {
		x, err := parseImm(v)
		if err != nil {
			return di, err
		}
		di.Values = append(di.Values, x)
	}
	return di, nil
}

// MustAssemble panics on parse errors (tests and embedded programs).
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInst(line string) (Inst, error) {
	in := Inst{Pg: NoPred}
	// Trailing predicate "?pN".
	if i := strings.LastIndex(line, "?p"); i >= 0 {
		pg, err := strconv.Atoi(strings.TrimSpace(line[i+2:]))
		if err != nil {
			return in, fmt.Errorf("bad predicate %q", line[i:])
		}
		in.Pg = pg
		line = strings.TrimSpace(line[:i])
	}
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	if strings.HasPrefix(mnem, "f.") {
		in.FP = true
		mnem = mnem[2:]
	}
	op, ok := nameToOp[mnem]
	if !ok {
		return in, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	in.Op = op
	ops := splitOperands(rest)
	return fillOperands(in, ops)
}

// splitOperands splits on commas outside brackets.
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseReg(s string, prefix byte) (int, error) {
	if len(s) < 2 || s[0] != prefix {
		return 0, fmt.Errorf("expected %c-register, got %q", prefix, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad register %q", s)
	}
	max := 0
	switch prefix {
	case 's':
		max = NumSclRegs
	case 'v':
		max = NumVecRegs
	case 'p':
		max = NumPredReg
	}
	if n < 0 || n >= max {
		return 0, fmt.Errorf("register %q out of range (0..%d)", s, max-1)
	}
	return n, nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMemS parses [sN+imm] / [sN-imm].
func parseMemS(s string) (rs int, imm int64, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("expected memory operand, got %q", s)
	}
	body := s[1 : len(s)-1]
	i := strings.IndexAny(body[1:], "+-")
	if i < 0 {
		return 0, 0, fmt.Errorf("memory operand %q needs an offset", s)
	}
	i++
	rs, err = parseReg(body[:i], 's')
	if err != nil {
		return
	}
	imm, err = parseImm(body[i:])
	return
}

// parseMemG parses [sN+vM*elem+imm].
func parseMemG(s string) (rs, vidx, elem int, imm int64, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		err = fmt.Errorf("expected memory operand, got %q", s)
		return
	}
	parts := strings.SplitN(s[1:len(s)-1], "+", 2)
	if len(parts) != 2 {
		err = fmt.Errorf("gather operand %q needs base+index", s)
		return
	}
	rs, err = parseReg(parts[0], 's')
	if err != nil {
		return
	}
	body := parts[1]
	star := strings.IndexByte(body, '*')
	if star < 0 {
		err = fmt.Errorf("gather operand %q needs vN*elem", s)
		return
	}
	vidx, err = parseReg(body[:star], 'v')
	if err != nil {
		return
	}
	tail := body[star+1:]
	j := strings.IndexAny(tail, "+-")
	if j < 0 {
		err = fmt.Errorf("gather operand %q needs an offset", s)
		return
	}
	elem, err = strconv.Atoi(tail[:j])
	if err != nil {
		return
	}
	imm, err = parseImm(tail[j:])
	return
}

func fillOperands(in Inst, ops []string) (Inst, error) {
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%v expects %d operands, got %d", in.Op, n, len(ops))
		}
		return nil
	}
	var err error
	fail := func(e error) (Inst, error) { return in, e }
	switch opForm[in.Op] {
	case formNone:
		return in, need(0)
	case formSRVStart:
		if err = need(1); err != nil {
			return fail(err)
		}
		switch strings.ToLower(ops[0]) {
		case "up":
			in.Dir = DirUp
		case "down":
			in.Dir = DirDown
		default:
			return fail(fmt.Errorf("srv_start direction must be up or down, got %q", ops[0]))
		}
	case formRdImm:
		if err = need(2); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 's'); err != nil {
			return fail(err)
		}
		if in.Imm, err = parseImm(ops[1]); err != nil {
			return fail(err)
		}
	case formRdRs:
		if err = need(2); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 's'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 's'); err != nil {
			return fail(err)
		}
	case formRdRsRs:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 's'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 's'); err != nil {
			return fail(err)
		}
		if in.Rs2, err = parseReg(ops[2], 's'); err != nil {
			return fail(err)
		}
	case formRdRsImm:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 's'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 's'); err != nil {
			return fail(err)
		}
		if in.Imm, err = parseImm(ops[2]); err != nil {
			return fail(err)
		}
	case formJmp:
		if err = need(1); err != nil {
			return fail(err)
		}
		in.Lbl = ops[0]
	case formBranch:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[0], 's'); err != nil {
			return fail(err)
		}
		if in.Rs2, err = parseReg(ops[1], 's'); err != nil {
			return fail(err)
		}
		in.Lbl = ops[2]
	case formLoad:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 's'); err != nil {
			return fail(err)
		}
		if in.Rs1, in.Imm, err = parseMemS(ops[1]); err != nil {
			return fail(err)
		}
		if in.Elem, err = strconv.Atoi(ops[2]); err != nil {
			return fail(err)
		}
	case formStore:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rs1, in.Imm, err = parseMemS(ops[0]); err != nil {
			return fail(err)
		}
		if in.Rs2, err = parseReg(ops[1], 's'); err != nil {
			return fail(err)
		}
		if in.Elem, err = strconv.Atoi(ops[2]); err != nil {
			return fail(err)
		}
	case formVLoad, formVBcast:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs1, in.Imm, err = parseMemS(ops[1]); err != nil {
			return fail(err)
		}
		if in.Elem, err = strconv.Atoi(ops[2]); err != nil {
			return fail(err)
		}
	case formVStore:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rs1, in.Imm, err = parseMemS(ops[0]); err != nil {
			return fail(err)
		}
		if in.Rs2, err = parseReg(ops[1], 'v'); err != nil {
			return fail(err)
		}
		if in.Elem, err = strconv.Atoi(ops[2]); err != nil {
			return fail(err)
		}
	case formGather:
		if err = need(2); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs1, in.Rs2, in.Elem, in.Imm, err = parseMemG(ops[1]); err != nil {
			return fail(err)
		}
	case formScatter:
		if err = need(2); err != nil {
			return fail(err)
		}
		if in.Rs1, in.Rs2, in.Elem, in.Imm, err = parseMemG(ops[0]); err != nil {
			return fail(err)
		}
		if in.Rs3, err = parseReg(ops[1], 'v'); err != nil {
			return fail(err)
		}
	case formVRdVs:
		if err = need(2); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 'v'); err != nil {
			return fail(err)
		}
	case formVRdVsVs:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs2, err = parseReg(ops[2], 'v'); err != nil {
			return fail(err)
		}
	case formVRdVsImm:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 'v'); err != nil {
			return fail(err)
		}
		if in.Imm, err = parseImm(ops[2]); err != nil {
			return fail(err)
		}
	case formVRdVsRs:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs2, err = parseReg(ops[2], 's'); err != nil {
			return fail(err)
		}
	case formVRdRs:
		if err = need(2); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 's'); err != nil {
			return fail(err)
		}
	case formPRd:
		if err = need(1); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'p'); err != nil {
			return fail(err)
		}
	case formPRdPs:
		if err = need(2); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'p'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 'p'); err != nil {
			return fail(err)
		}
	case formPRdPsPs:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'p'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 'p'); err != nil {
			return fail(err)
		}
		if in.Rs2, err = parseReg(ops[2], 'p'); err != nil {
			return fail(err)
		}
	case formPRdVsVs:
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.Rd, err = parseReg(ops[0], 'p'); err != nil {
			return fail(err)
		}
		if in.Rs1, err = parseReg(ops[1], 'v'); err != nil {
			return fail(err)
		}
		if in.Rs2, err = parseReg(ops[2], 'v'); err != nil {
			return fail(err)
		}
	}
	return in, nil
}
