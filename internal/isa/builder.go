package isa

import "fmt"

// Builder assembles a Program with forward label references. All emit methods
// return the Builder for chaining; Build resolves labels and returns the
// finished program.
type Builder struct {
	insts  []Inst
	labels map[string]int
	errs   []error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Label binds name to the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
	}
	b.labels[name] = len(b.insts)
	return b
}

// Emit appends a raw instruction. Pg defaults to NoPred when the zero value
// is passed through the typed helpers; raw emission must set it explicitly.
func (b *Builder) Emit(in Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

func (b *Builder) emit(in Inst) *Builder {
	return b.Emit(in)
}

// --- Scalar ---

func (b *Builder) MovI(rd int, imm int64) *Builder {
	return b.emit(Inst{Op: OpMovI, Rd: rd, Imm: imm, Pg: NoPred})
}
func (b *Builder) Mov(rd, rs int) *Builder {
	return b.emit(Inst{Op: OpMov, Rd: rd, Rs1: rs, Pg: NoPred})
}
func (b *Builder) Add(rd, rs1, rs2 int) *Builder {
	return b.emit(Inst{Op: OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2, Pg: NoPred})
}
func (b *Builder) AddI(rd, rs1 int, imm int64) *Builder {
	return b.emit(Inst{Op: OpAddI, Rd: rd, Rs1: rs1, Imm: imm, Pg: NoPred})
}
func (b *Builder) Sub(rd, rs1, rs2 int) *Builder {
	return b.emit(Inst{Op: OpSub, Rd: rd, Rs1: rs1, Rs2: rs2, Pg: NoPred})
}
func (b *Builder) Mul(rd, rs1, rs2 int) *Builder {
	return b.emit(Inst{Op: OpMul, Rd: rd, Rs1: rs1, Rs2: rs2, Pg: NoPred})
}
func (b *Builder) ShlI(rd, rs1 int, imm int64) *Builder {
	return b.emit(Inst{Op: OpShlI, Rd: rd, Rs1: rs1, Imm: imm, Pg: NoPred})
}
func (b *Builder) ShrI(rd, rs1 int, imm int64) *Builder {
	return b.emit(Inst{Op: OpShrI, Rd: rd, Rs1: rs1, Imm: imm, Pg: NoPred})
}
func (b *Builder) And(rd, rs1, rs2 int) *Builder {
	return b.emit(Inst{Op: OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2, Pg: NoPred})
}
func (b *Builder) Xor(rd, rs1, rs2 int) *Builder {
	return b.emit(Inst{Op: OpXor, Rd: rd, Rs1: rs1, Rs2: rs2, Pg: NoPred})
}

// Load emits a scalar load of elem bytes from [rs1+off].
func (b *Builder) Load(rd, rs1 int, off int64, elem int) *Builder {
	return b.emit(Inst{Op: OpLoad, Rd: rd, Rs1: rs1, Imm: off, Elem: elem, Pg: NoPred})
}

// Store emits a scalar store of elem bytes of rs2 to [rs1+off].
func (b *Builder) Store(rs1 int, off int64, elem, rs2 int) *Builder {
	return b.emit(Inst{Op: OpStore, Rs1: rs1, Rs2: rs2, Imm: off, Elem: elem, Pg: NoPred})
}

// --- Control flow ---

func (b *Builder) Jmp(label string) *Builder {
	return b.emit(Inst{Op: OpJmp, Lbl: label, Pg: NoPred})
}
func (b *Builder) BEQ(rs1, rs2 int, label string) *Builder {
	return b.emit(Inst{Op: OpBEQ, Rs1: rs1, Rs2: rs2, Lbl: label, Pg: NoPred})
}
func (b *Builder) BNE(rs1, rs2 int, label string) *Builder {
	return b.emit(Inst{Op: OpBNE, Rs1: rs1, Rs2: rs2, Lbl: label, Pg: NoPred})
}
func (b *Builder) BLT(rs1, rs2 int, label string) *Builder {
	return b.emit(Inst{Op: OpBLT, Rs1: rs1, Rs2: rs2, Lbl: label, Pg: NoPred})
}
func (b *Builder) BGE(rs1, rs2 int, label string) *Builder {
	return b.emit(Inst{Op: OpBGE, Rs1: rs1, Rs2: rs2, Lbl: label, Pg: NoPred})
}
func (b *Builder) Halt() *Builder { return b.emit(Inst{Op: OpHalt, Pg: NoPred}) }

// --- Vector ALU ---

func (b *Builder) VAdd(vd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVAdd, Rd: vd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VSub(vd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVSub, Rd: vd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VMul(vd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVMul, Rd: vd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VMulAdd(vd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVMulAdd, Rd: vd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VAddI(vd, vs1 int, imm int64, pg int) *Builder {
	return b.emit(Inst{Op: OpVAddI, Rd: vd, Rs1: vs1, Imm: imm, Pg: pg})
}
func (b *Builder) VMulI(vd, vs1 int, imm int64, pg int) *Builder {
	return b.emit(Inst{Op: OpVMulI, Rd: vd, Rs1: vs1, Imm: imm, Pg: pg})
}
func (b *Builder) VAndI(vd, vs1 int, imm int64, pg int) *Builder {
	return b.emit(Inst{Op: OpVAndI, Rd: vd, Rs1: vs1, Imm: imm, Pg: pg})
}
func (b *Builder) VShrI(vd, vs1 int, imm int64, pg int) *Builder {
	return b.emit(Inst{Op: OpVShrI, Rd: vd, Rs1: vs1, Imm: imm, Pg: pg})
}
func (b *Builder) VXor(vd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVXor, Rd: vd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VAnd(vd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVAnd, Rd: vd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VAddS(vd, vs1, rs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVAddS, Rd: vd, Rs1: vs1, Rs2: rs2, Pg: pg})
}
func (b *Builder) VMulS(vd, vs1, rs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVMulS, Rd: vd, Rs1: vs1, Rs2: rs2, Pg: pg})
}
func (b *Builder) VSplat(vd, rs1 int) *Builder {
	return b.emit(Inst{Op: OpVSplat, Rd: vd, Rs1: rs1, Pg: NoPred})
}
func (b *Builder) VIota(vd, rs1 int) *Builder {
	return b.emit(Inst{Op: OpVIota, Rd: vd, Rs1: rs1, Pg: NoPred})
}
func (b *Builder) VIotaRev(vd, rs1 int) *Builder {
	return b.emit(Inst{Op: OpVIotaRev, Rd: vd, Rs1: rs1, Pg: NoPred})
}
func (b *Builder) VSel(vd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVSel, Rd: vd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VMov(vd, vs1, pg int) *Builder {
	return b.emit(Inst{Op: OpVMov, Rd: vd, Rs1: vs1, Pg: pg})
}

// --- Predicates ---

func (b *Builder) VCmpLT(pd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVCmpLT, Rd: pd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VCmpGE(pd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVCmpGE, Rd: pd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VCmpEQ(pd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVCmpEQ, Rd: pd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) VCmpNE(pd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVCmpNE, Rd: pd, Rs1: vs1, Rs2: vs2, Pg: pg})
}
func (b *Builder) PTrue(pd int) *Builder {
	return b.emit(Inst{Op: OpPTrue, Rd: pd, Pg: NoPred})
}
func (b *Builder) PFalse(pd int) *Builder {
	return b.emit(Inst{Op: OpPFalse, Rd: pd, Pg: NoPred})
}
func (b *Builder) PNot(pd, ps1 int) *Builder {
	return b.emit(Inst{Op: OpPNot, Rd: pd, Rs1: ps1, Pg: NoPred})
}
func (b *Builder) PAnd(pd, ps1, ps2 int) *Builder {
	return b.emit(Inst{Op: OpPAnd, Rd: pd, Rs1: ps1, Rs2: ps2, Pg: NoPred})
}

// --- Vector memory ---

// VLoad emits a contiguous vector load: vd[i] <- mem[rs1+off+i*elem].
func (b *Builder) VLoad(vd, rs1 int, off int64, elem, pg int) *Builder {
	return b.emit(Inst{Op: OpVLoad, Rd: vd, Rs1: rs1, Imm: off, Elem: elem, Pg: pg})
}

// VStore emits a contiguous vector store: mem[rs1+off+i*elem] <- vs2[i].
func (b *Builder) VStore(rs1 int, off int64, elem, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVStore, Rs1: rs1, Rs2: vs2, Imm: off, Elem: elem, Pg: pg})
}

// VGather emits vd[i] <- mem[rs1 + vs2[i]*elem + off].
func (b *Builder) VGather(vd, rs1, vs2 int, off int64, elem, pg int) *Builder {
	return b.emit(Inst{Op: OpVGather, Rd: vd, Rs1: rs1, Rs2: vs2, Imm: off, Elem: elem, Pg: pg})
}

// VScatter emits mem[rs1 + vs2[i]*elem + off] <- vs3[i].
func (b *Builder) VScatter(rs1, vs2, vs3 int, off int64, elem, pg int) *Builder {
	return b.emit(Inst{Op: OpVScatter, Rs1: rs1, Rs2: vs2, Rs3: vs3, Imm: off, Elem: elem, Pg: pg})
}

// VBcast emits a broadcast load: vd[i] <- mem[rs1+off] for all lanes.
func (b *Builder) VBcast(vd, rs1 int, off int64, elem, pg int) *Builder {
	return b.emit(Inst{Op: OpVBcast, Rd: vd, Rs1: rs1, Imm: off, Elem: elem, Pg: pg})
}

// VConflict emits the FlexVec-style conflict-detection instruction.
func (b *Builder) VConflict(pd, vs1, vs2, pg int) *Builder {
	return b.emit(Inst{Op: OpVConflict, Rd: pd, Rs1: vs1, Rs2: vs2, Pg: pg})
}

// --- SRV ---

func (b *Builder) SRVStart(dir Direction) *Builder {
	return b.emit(Inst{Op: OpSRVStart, Dir: dir, Pg: NoPred})
}
func (b *Builder) SRVEnd() *Builder {
	return b.emit(Inst{Op: OpSRVEnd, Pg: NoPred})
}

// SetLastFP tags the most recently emitted instruction as FP-class, moving
// it onto the floating-point functional-unit latency path.
func (b *Builder) SetLastFP() *Builder {
	if len(b.insts) > 0 {
		b.insts[len(b.insts)-1].FP = true
	}
	return b
}

// Len returns the number of instructions emitted so far (label generation).
func (b *Builder) Len() int { return len(b.insts) }

// Build resolves labels and returns the program. It returns an error for
// undefined or duplicate labels.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	insts := make([]Inst, len(b.insts))
	copy(insts, b.insts)
	for i := range insts {
		if insts[i].Lbl == "" {
			continue
		}
		tgt, ok := b.labels[insts[i].Lbl]
		if !ok {
			return nil, fmt.Errorf("undefined label %q at instruction %d", insts[i].Lbl, i)
		}
		insts[i].Tgt = tgt
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{Insts: insts, Labels: labels}, nil
}

// MustBuild is Build that panics on error; for tests and static programs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
