package isa

import (
	"strings"
	"testing"

	"srvsim/internal/mem"
)

const listing2Asm = `
; The paper's listing 2: a[x[i]] = a[i] + 2 under SRV.
	movi s0, 0
	movi s1, 64
	movi s2, 0x2000     ; &a[0] (moving)
	movi s3, 0x3000     ; &x[0] (moving)
	movi s4, 0x2000     ; a base (fixed)
loop:
	srv_start up
	v_load v0, [s2+0], 4
	v_addi v0, v0, 2
	v_load v1, [s3+0], 4
	v_scatter [s4+v1*4+0], v0
	srv_end
	addi s0, s0, 16
	addi s2, s2, 64
	addi s3, s3, 64
	blt s0, s1, loop
	halt
`

func TestAssembleListing2(t *testing.T) {
	p, err := Assemble(listing2Asm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 16 {
		t.Fatalf("instructions = %d, want 16", p.Len())
	}
	if p.At(5).Op != OpSRVStart || p.At(5).Dir != DirUp {
		t.Errorf("inst 5 = %v %v, want srv_start UP", p.At(5).Op, p.At(5).Dir)
	}
	sc := p.At(9)
	if sc.Op != OpVScatter || sc.Rs1 != 4 || sc.Rs2 != 1 || sc.Rs3 != 0 || sc.Elem != 4 {
		t.Errorf("scatter parsed wrong: %+v", sc)
	}
	br := p.At(14)
	if br.Op != OpBLT || br.Tgt != 5 {
		t.Errorf("branch parsed wrong: %+v", br)
	}

	// The assembled program must behave like the hand-built one.
	im := mem.NewImage()
	for i := 0; i < 64; i++ {
		im.WriteInt(0x2000+uint64(i*4), 4, int64(i*10))
		xi := int64(i - 1)
		if i%4 == 0 {
			xi = int64(i + 3)
		}
		im.WriteInt(0x3000+uint64(i*4), 4, xi)
	}
	want := make([]int64, 80)
	for i := 0; i < 64; i++ {
		want[i] = int64(i * 10)
	}
	for i := 0; i < 64; i++ {
		xi := i - 1
		if i%4 == 0 {
			xi = i + 3
		}
		want[xi] = want[i] + 2
	}
	ip := NewInterp(p, im)
	if err := ip.Run(100000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := im.ReadInt(0x2000+uint64(i*4), 4); got != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, got, want[i])
		}
	}
	if ip.Counts.Replays != 4 {
		t.Errorf("replays = %d, want 4", ip.Counts.Replays)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus s0, s1",
		"movi v0, 3",
		"addi s0, s0",
		"v_load v0, [s1+0]",      // missing elem
		"srv_start sideways",     //
		"blt s0, s1, nowhere",    // undefined label
		"v_gather v0, [s1+v2+4]", // missing *elem
		"load s0, [q1+0], 4",     // bad register class
	}
	for _, src := range cases {
		if _, err := Assemble(src + "\n\thalt"); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssemblePredicatesAndFP(t *testing.T) {
	p, err := Assemble(`
	p_true p2
	f.v_mul v1, v1, v2 ?p2
	v_cmplt p3, v0, v1
	halt`)
	if err != nil {
		t.Fatal(err)
	}
	mul := p.At(1)
	if !mul.FP || mul.Pg != 2 {
		t.Errorf("predicated FP mul parsed wrong: %+v", mul)
	}
	cmp := p.At(2)
	if cmp.Op != OpVCmpLT || cmp.Rd != 3 {
		t.Errorf("compare parsed wrong: %+v", cmp)
	}
}

// TestAsmRoundTrip: Disassemble then Assemble must reproduce every
// instruction of real compiled programs exactly.
func TestAsmRoundTrip(t *testing.T) {
	progs := []*Program{
		MustAssemble(listing2Asm),
		buildListing1(0x2000, 0x3000, 64),
	}
	for pi, p := range progs {
		text := Disassemble(p)
		q, err := Assemble(text)
		if err != nil {
			t.Fatalf("program %d: reassembly failed: %v\n%s", pi, err, text)
		}
		if q.Len() != p.Len() {
			t.Fatalf("program %d: length %d -> %d", pi, p.Len(), q.Len())
		}
		for i := 0; i < p.Len(); i++ {
			a, b := *p.At(i), *q.At(i)
			a.Lbl, b.Lbl = "", "" // label strings differ; targets must match
			if a != b {
				t.Errorf("program %d inst %d: %+v != %+v\nline: %s", pi, i, a, b,
					strings.Split(text, "\n")[i])
			}
		}
	}
}

func TestDisassembleStableLabels(t *testing.T) {
	p := buildListing1(0x2000, 0x3000, 32)
	text := Disassemble(p)
	if !strings.Contains(text, "L5:") && !strings.Contains(text, "L4:") {
		t.Errorf("disassembly should contain an invented loop label:\n%s", text)
	}
	if !strings.Contains(text, "srv_start up") {
		t.Errorf("disassembly missing srv_start:\n%s", text)
	}
}
