package isa

import (
	"testing"

	"srvsim/internal/mem"
)

// TestInterpOpMatrix exercises every ALU opcode once with known operands.
func TestInterpOpMatrix(t *testing.T) {
	im := mem.NewImage()
	p := NewBuilder().
		MovI(0, 12).
		MovI(1, 5).
		Mov(2, 0).
		Add(3, 0, 1).
		Sub(4, 0, 1).
		Mul(5, 0, 1).
		And(6, 0, 1).
		Emit(Inst{Op: OpOr, Rd: 7, Rs1: 0, Rs2: 1, Pg: NoPred}).
		Xor(8, 0, 1).
		ShlI(9, 0, 2).
		ShrI(10, 0, 1).
		VSplat(0, 0).
		VIota(1, 1).
		VIotaRev(2, 1).
		VAddS(3, 1, 0, NoPred). // v3[i] = (5+i) + 12
		VMulS(4, 1, 1, NoPred). // v4[i] = (5+i) * 5
		VAndI(5, 1, 3, NoPred). // v5[i] = (5+i) & 3
		VShrI(6, 1, 1, NoPred). // v6[i] = (5+i) >> 1
		VSub(7, 2, 1, NoPred).  // v7[i] = (20-i) - (5+i) = 15-2i
		VMov(8, 1, NoPred).
		PTrue(1).
		PFalse(2).
		Emit(Inst{Op: OpPOr, Rd: 3, Rs1: 1, Rs2: 2, Pg: NoPred}).
		PNot(4, 2).
		PAnd(5, 1, 4).
		Halt().
		MustBuild()
	ip := NewInterp(p, im)
	if err := ip.Run(1000); err != nil {
		t.Fatal(err)
	}
	scl := []struct {
		reg  int
		want int64
	}{{2, 12}, {3, 17}, {4, 7}, {5, 60}, {6, 4}, {7, 13}, {8, 9}, {9, 48}, {10, 6}}
	for _, c := range scl {
		if ip.S[c.reg] != c.want {
			t.Errorf("s%d = %d, want %d", c.reg, ip.S[c.reg], c.want)
		}
	}
	for i := 0; i < NumLanes; i++ {
		checks := []struct {
			reg  int
			want int64
		}{
			{0, 12},
			{1, int64(5 + i)},
			{2, int64(5 + NumLanes - 1 - i)},
			{3, int64(5 + i + 12)},
			{4, int64((5 + i) * 5)},
			{5, int64((5 + i) & 3)},
			{6, int64((5 + i) >> 1)},
			{7, int64(15 - 2*i)},
			{8, int64(5 + i)},
		}
		for _, c := range checks {
			if ip.Vr[c.reg][i] != c.want {
				t.Errorf("v%d[%d] = %d, want %d", c.reg, i, ip.Vr[c.reg][i], c.want)
			}
		}
		if !ip.Pr[1][i] || ip.Pr[2][i] {
			t.Errorf("lane %d: p1/p2 wrong", i)
		}
		if !ip.Pr[3][i] || !ip.Pr[4][i] || !ip.Pr[5][i] {
			t.Errorf("lane %d: p3/p4/p5 wrong (or/not/and)", i)
		}
	}
}

// TestInterpElemSizes: loads/stores at each element width sign-extend
// correctly.
func TestInterpElemSizes(t *testing.T) {
	for _, elem := range []int{1, 2, 4, 8} {
		im := mem.NewImage()
		base := im.Alloc(NumLanes*elem, 64)
		// Write -3 at every element.
		for i := 0; i < NumLanes; i++ {
			im.WriteInt(base+uint64(i*elem), elem, -3)
		}
		p := NewBuilder().
			MovI(0, int64(base)).
			VLoad(0, 0, 0, elem, NoPred).
			VAddI(0, 0, 1, NoPred).
			VStore(0, 0, elem, 0, NoPred).
			Halt().
			MustBuild()
		ip := NewInterp(p, im)
		if err := ip.Run(100); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < NumLanes; i++ {
			if got := im.ReadInt(base+uint64(i*elem), elem); got != -2 {
				t.Errorf("elem=%d lane %d: %d, want -2 (sign extension)", elem, i, got)
			}
		}
	}
}
