package isa

import (
	"strings"
	"testing"

	"srvsim/internal/mem"
)

// TestAssembleRejects covers the assembler's diagnostic paths: each source
// must fail with a message mentioning the offending construct.
func TestAssembleRejects(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "\tfrobnicate s0, s1", "mnemonic"},
		{"bad operand count", "\taddi s0, s1", "operand"},
		{"bad register class", "\taddi v0, s1, 2", "register"},
		{"register out of range", "\tmovi s99, 1", "register"},
		{"undefined label", "\tjmp nowhere\n\thalt", "label"},
		{"duplicate label", "x:\n\tnop\nx:\n\thalt", "label"},
		{"srv_start bad direction", "\tsrv_start sideways", "direction"},
		{"bad immediate", "\tmovi s0, notanumber", "immediate"},
		{"bad data directive", ".data zzz, 4, 1", "data"},
		{"bad data element size", ".data 0x100, 3, 1", "data"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("%q must be rejected", c.src)
			}
			if !strings.Contains(strings.ToLower(err.Error()), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestAssembleWithData parses .data directives and applies them to an
// image the way cmd/srvsim does.
func TestAssembleWithData(t *testing.T) {
	src := `
.data 0x1000, 4, 10, 20, 30
.data 0x2000, 8, -1

	movi s0, 0x1000
	load s1, [s0+4], 4
	halt`
	prog, inits, err := AssembleWithData(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(inits) != 2 {
		t.Fatalf("inits = %d, want 2", len(inits))
	}
	if inits[0].Addr != 0x1000 || inits[0].Elem != 4 || len(inits[0].Values) != 3 {
		t.Errorf("first init parsed wrong: %+v", inits[0])
	}
	im := mem.NewImage()
	for _, d := range inits {
		for i, v := range d.Values {
			im.WriteInt(d.Addr+uint64(i*d.Elem), d.Elem, v)
		}
	}
	ip := NewInterp(prog, im)
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.S[1] != 20 {
		t.Errorf("s1 = %d, want 20 (a[1] of the .data block)", ip.S[1])
	}
	if got := im.ReadInt(0x2000, 8); got != -1 {
		t.Errorf("8-byte init = %d, want -1", got)
	}
}

// TestInterpScalarProgram runs a scalar-only program (branch loop, loads,
// stores) on the functional interpreter — the same path the pipeline's
// differential tests use for SRV code, here exercised without regions.
func TestInterpScalarProgram(t *testing.T) {
	im := mem.NewImage()
	base := im.Alloc(32*4, 64)
	for i := 0; i < 32; i++ {
		im.WriteInt(base+uint64(i*4), 4, int64(i))
	}
	// Sum a[0..31] into s3, doubling odd elements.
	prog := MustAssemble(`
	movi s0, ` + itoa(int64(base)) + `
	movi s1, 0
	movi s2, 32
	movi s3, 0
	movi s6, 1
	movi s7, 0
loop:
	load s4, [s0+0], 4
	and  s5, s4, s6
	beq  s5, s7, even
	add  s4, s4, s4
even:
	add  s3, s3, s4
	addi s0, s0, 4
	addi s1, s1, 1
	blt  s1, s2, loop
	store [s0+0], s3, 4
	halt`)
	ip := NewInterp(prog, im)
	if err := ip.Run(10_000); err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(0); i < 32; i++ {
		v := i
		if i%2 == 1 {
			v *= 2
		}
		want += v
	}
	if ip.S[3] != want {
		t.Errorf("sum = %d, want %d", ip.S[3], want)
	}
	if got := im.ReadInt(base+32*4, 4); got != want {
		t.Errorf("stored sum = %d, want %d", got, want)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
