package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary program encoding: a fixed 21-byte record per instruction under a
// small header, so compiled programs can be stored and reloaded without the
// textual assembler. Branch targets are encoded resolved; label names are
// not preserved.
//
//	magic "SRV1" | uint32 count | count * record
//	record: op u16 | rd u8 | rs1 u8 | rs2 u8 | rs3 u8 | pg u8 (0xFF = none)
//	        | elem u8 | flags u8 (bit0 FP, bit1 DOWN) | imm i64 | tgt u32

const encMagic = "SRV1"
const encRecordSize = 21

// Encode serialises the program.
func Encode(p *Program) []byte {
	out := make([]byte, 0, 8+len(p.Insts)*encRecordSize)
	out = append(out, encMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Insts)))
	for i := range p.Insts {
		in := &p.Insts[i]
		out = binary.LittleEndian.AppendUint16(out, uint16(in.Op))
		pg := byte(0xFF)
		if in.Pg != NoPred {
			pg = byte(in.Pg)
		}
		flags := byte(0)
		if in.FP {
			flags |= 1
		}
		if in.Dir == DirDown {
			flags |= 2
		}
		out = append(out, byte(in.Rd), byte(in.Rs1), byte(in.Rs2), byte(in.Rs3),
			pg, byte(in.Elem), flags)
		out = binary.LittleEndian.AppendUint64(out, uint64(in.Imm))
		out = binary.LittleEndian.AppendUint32(out, uint32(in.Tgt))
	}
	return out
}

// Decode reconstructs a program from its binary encoding.
func Decode(data []byte) (*Program, error) {
	if len(data) < 8 || string(data[:4]) != encMagic {
		return nil, fmt.Errorf("isa: bad program magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:8]))
	want := 8 + count*encRecordSize
	if len(data) != want {
		return nil, fmt.Errorf("isa: program length %d, want %d for %d instructions",
			len(data), want, count)
	}
	p := &Program{Insts: make([]Inst, count), Labels: map[string]int{}}
	off := 8
	for i := 0; i < count; i++ {
		r := data[off : off+encRecordSize]
		in := &p.Insts[i]
		in.Op = Op(binary.LittleEndian.Uint16(r[0:2]))
		if in.Op < 0 || in.Op >= numOps {
			return nil, fmt.Errorf("isa: instruction %d has invalid opcode %d", i, in.Op)
		}
		in.Rd, in.Rs1, in.Rs2, in.Rs3 = int(r[2]), int(r[3]), int(r[4]), int(r[5])
		in.Pg = NoPred
		if r[6] != 0xFF {
			in.Pg = int(r[6])
		}
		in.Elem = int(r[7])
		in.FP = r[8]&1 != 0
		if r[8]&2 != 0 {
			in.Dir = DirDown
		}
		in.Imm = int64(binary.LittleEndian.Uint64(r[9:17]))
		in.Tgt = int(binary.LittleEndian.Uint32(r[17:21]))
		if in.IsBranch() && (in.Tgt < 0 || in.Tgt >= count) {
			return nil, fmt.Errorf("isa: instruction %d branches to %d (outside program)", i, in.Tgt)
		}
		off += encRecordSize
	}
	return p, nil
}
