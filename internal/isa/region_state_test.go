package isa

import (
	"testing"

	"srvsim/internal/mem"
)

// TestInterpRegionStateTransitions steps the functional interpreter through
// a conflict-bearing region and asserts the architectural SRV state at each
// phase: outside -> speculative with all lanes -> sticky needs-replay bits
// accumulating -> replay pass with only the flagged lanes -> outside again.
func TestInterpRegionStateTransitions(t *testing.T) {
	im := mem.NewImage()
	aBase := im.Alloc(64*4, 64)
	xBase := im.Alloc(64*4, 64)
	for i := 0; i < 16; i++ {
		im.WriteInt(aBase+uint64(i*4), 4, int64(i))
		xi := int64(i - 1)
		if i%4 == 0 {
			xi = int64(i + 3)
		}
		im.WriteInt(xBase+uint64(i*4), 4, xi)
	}
	// Listing-1: a[x[i]] = a[i] + 2 with the {3,0,1,2,...} pattern.
	prog := NewBuilder().
		MovI(0, int64(aBase)).
		MovI(1, int64(xBase)).
		MovI(2, int64(aBase)).
		SRVStart(DirUp).
		VLoad(0, 0, 0, 4, NoPred).
		VAddI(0, 0, 2, NoPred).
		VLoad(1, 1, 0, 4, NoPred).
		VScatter(2, 1, 0, 0, 4, NoPred).
		SRVEnd().
		Halt().
		MustBuild()

	ip := NewInterp(prog, im)
	if ip.InRegion() {
		t.Fatal("must start outside any region")
	}
	step := func() {
		t.Helper()
		if err := ip.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // movi*3 + srv_start
		step()
	}
	if !ip.InRegion() || ip.ReplayMask() != AllTrue() {
		t.Fatalf("after srv_start: inRegion=%v replay=%v, want all-true", ip.InRegion(), ip.ReplayMask())
	}
	if ip.NeedsReplay().Any() {
		t.Fatal("needs-replay must start clear")
	}
	for i := 0; i < 4; i++ { // body
		step()
	}
	want := Pred{}
	want[3], want[7], want[11], want[15] = true, true, true, true
	if ip.NeedsReplay() != want {
		t.Fatalf("needs-replay = %v, want lanes {3,7,11,15}", ip.NeedsReplay())
	}
	step() // srv_end: replay pass begins
	if !ip.InRegion() {
		t.Fatal("srv_end with flagged lanes must stay in the region")
	}
	if ip.ReplayMask() != want {
		t.Fatalf("replay mask = %v, want the flagged lanes only", ip.ReplayMask())
	}
	if ip.NeedsReplay().Any() {
		t.Fatal("needs-replay must be consumed by the replay pass")
	}
	for i := 0; i < 5; i++ { // body again + srv_end
		step()
	}
	if ip.InRegion() {
		t.Fatal("the replay pass is clean: the region must have committed")
	}
	// Final memory equals sequential semantics: a[x[i]] = a[i]+2 in order.
	wantMem := make([]int64, 32)
	for i := 0; i < 32; i++ {
		wantMem[i] = int64(i)
	}
	for i := 0; i < 16; i++ {
		xi := i - 1
		if i%4 == 0 {
			xi = i + 3
		}
		wantMem[xi] = wantMem[i] + 2
	}
	for i := 0; i < 16; i++ {
		if got := im.ReadInt(aBase+uint64(i*4), 4); got != wantMem[i] {
			t.Errorf("a[%d] = %d, want %d", i, got, wantMem[i])
		}
	}
}
