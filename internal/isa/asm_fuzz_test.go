package isa

import (
	"math/rand"
	"testing"
)

// randInst builds a random well-formed instruction of a random form.
func randInst(rng *rand.Rand) Inst {
	elems := []int{1, 2, 4, 8}
	forms := []Op{
		OpNop, OpHalt, OpMovI, OpMov, OpAdd, OpAddI, OpSub, OpMul, OpAnd,
		OpOr, OpXor, OpShlI, OpShrI, OpLoad, OpStore,
		OpVMov, OpVAdd, OpVSub, OpVMul, OpVMulAdd, OpVAddI, OpVMulI, OpVAnd,
		OpVXor, OpVShrI, OpVAndI, OpVAddS, OpVMulS, OpVSplat, OpVIota,
		OpVIotaRev, OpVSel, OpVCmpLT, OpVCmpGE, OpVCmpEQ, OpVCmpNE,
		OpPTrue, OpPFalse, OpPAnd, OpPOr, OpPNot,
		OpVLoad, OpVStore, OpVGather, OpVScatter, OpVBcast, OpVConflict,
		OpSRVStart,
	}
	in := Inst{
		Op:   forms[rng.Intn(len(forms))],
		Rd:   rng.Intn(16),
		Rs1:  rng.Intn(16),
		Rs2:  rng.Intn(16),
		Rs3:  rng.Intn(16),
		Pg:   NoPred,
		Elem: elems[rng.Intn(len(elems))],
		Imm:  int64(rng.Intn(512) - 128),
	}
	if rng.Intn(3) == 0 && in.IsVector() {
		in.Pg = rng.Intn(NumPredReg)
	}
	if rng.Intn(4) == 0 && in.IsVector() {
		in.FP = true
	}
	if in.Op == OpSRVStart && rng.Intn(2) == 0 {
		in.Dir = DirDown
	}
	// Normalise fields the form does not carry, so equality after the
	// round-trip is exact.
	switch opForm[in.Op] {
	case formNone, formSRVStart:
		in.Rd, in.Rs1, in.Rs2, in.Rs3, in.Imm, in.Elem, in.Pg = 0, 0, 0, 0, 0, 0, NoPred
		if in.Op != OpSRVStart {
			in.Dir = DirUp
		}
		in.FP = false
	case formRdImm:
		in.Rs1, in.Rs2, in.Rs3, in.Elem = 0, 0, 0, 0
		in.FP, in.Pg, in.Dir = false, NoPred, DirUp
	case formRdRs, formVRdRs, formPRdPs, formVRdVs:
		in.Rs2, in.Rs3, in.Imm, in.Elem = 0, 0, 0, 0
		in.Dir = DirUp
		if !in.IsVector() {
			in.FP, in.Pg = false, NoPred
		}
		if in.Op == OpVSplat || in.Op == OpVIota || in.Op == OpVIotaRev {
			in.Pg = NoPred
		}
	case formRdRsRs:
		in.Rs3, in.Imm, in.Elem = 0, 0, 0
		in.FP, in.Pg, in.Dir = false, NoPred, DirUp
	case formRdRsImm, formVRdVsImm:
		in.Rs2, in.Rs3, in.Elem = 0, 0, 0
		in.Dir = DirUp
		if !in.IsVector() {
			in.FP, in.Pg = false, NoPred
		}
	case formVRdVsVs, formPRdVsVs, formPRdPsPs, formVRdVsRs:
		in.Rs3, in.Imm, in.Elem = 0, 0, 0
		in.Dir = DirUp
	case formPRd:
		in.Rs1, in.Rs2, in.Rs3, in.Imm, in.Elem = 0, 0, 0, 0, 0
		in.Dir = DirUp
		in.Pg = NoPred
	case formLoad, formVLoad, formVBcast:
		in.Rs2, in.Rs3 = 0, 0
		in.Dir = DirUp
		if !in.IsVector() {
			in.FP, in.Pg = false, NoPred
		}
	case formStore, formVStore:
		in.Rd, in.Rs3 = 0, 0
		in.Dir = DirUp
		if !in.IsVector() {
			in.FP, in.Pg = false, NoPred
		}
	case formGather:
		in.Rs3 = 0
		in.Dir = DirUp
	case formScatter:
		in.Rd = 0
		in.Dir = DirUp
	}
	return in
}

// TestAsmFuzzRoundTrip: Disassemble->Assemble reproduces random programs
// instruction for instruction.
func TestAsmFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			b.Emit(randInst(rng))
		}
		b.Halt()
		p := b.MustBuild()
		text := Disassemble(p)
		q, err := Assemble(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if q.Len() != p.Len() {
			t.Fatalf("trial %d: length %d -> %d", trial, p.Len(), q.Len())
		}
		for i := 0; i < p.Len(); i++ {
			a, c := *p.At(i), *q.At(i)
			a.Lbl, c.Lbl = "", ""
			if a != c {
				t.Fatalf("trial %d inst %d:\n  orig %+v\n  got  %+v\n  text: %s",
					trial, i, a, c, asmLineOf(text, i))
			}
		}
	}
}

func asmLineOf(text string, i int) string {
	lines := []string{}
	for _, l := range splitLines(text) {
		if len(l) > 0 && l[len(l)-1] != ':' {
			lines = append(lines, l)
		}
	}
	if i < len(lines) {
		return lines[i]
	}
	return "?"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// TestEncodeDecodeRoundTrip: binary encoding reproduces random programs
// exactly (modulo label names, which are not preserved).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 30; trial++ {
		b := NewBuilder()
		n := 3 + rng.Intn(50)
		for i := 0; i < n; i++ {
			b.Emit(randInst(rng))
		}
		b.Halt()
		p := b.MustBuild()
		q, err := Decode(Encode(p))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if q.Len() != p.Len() {
			t.Fatalf("trial %d: length %d -> %d", trial, p.Len(), q.Len())
		}
		for i := 0; i < p.Len(); i++ {
			a, c := *p.At(i), *q.At(i)
			a.Lbl, c.Lbl = "", ""
			if a != c {
				t.Fatalf("trial %d inst %d: %+v != %+v", trial, i, a, c)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := MustAssemble("\tmovi s0, 1\n\thalt")
	data := Encode(p)
	if _, err := Decode(data[:len(data)-1]); err == nil {
		t.Error("truncated program must be rejected")
	}
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic must be rejected")
	}
	bad2 := append([]byte{}, data...)
	bad2[8] = 0xFF // opcode low byte -> invalid
	bad2[9] = 0xFF
	if _, err := Decode(bad2); err == nil {
		t.Error("invalid opcode must be rejected")
	}
}
