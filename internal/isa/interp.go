package isa

import (
	"fmt"
	"sort"
)

// Memory is the byte-addressable storage the interpreter and simulator
// execute against.
type Memory interface {
	ReadBytes(addr uint64, p []byte)
	WriteBytes(addr uint64, p []byte)
}

// ReadInt loads n little-endian bytes from m and sign-extends them. All
// arithmetic in the ISA is on signed 64-bit values; sign extension keeps
// narrow-element arithmetic consistent with wide.
func ReadInt(m Memory, addr uint64, n int) int64 {
	var buf [8]byte
	m.ReadBytes(addr, buf[:n])
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(buf[i]) << (8 * uint(i))
	}
	shift := uint(64 - 8*n)
	return int64(v<<shift) >> shift
}

// WriteInt stores the low n bytes of v little-endian.
func WriteInt(m Memory, addr uint64, n int, v int64) {
	var buf [8]byte
	for i := 0; i < n; i++ {
		buf[i] = byte(uint64(v) >> (8 * uint(i)))
	}
	m.WriteBytes(addr, buf[:n])
}

// PutInt writes the n-byte little-endian encoding of v into dst, which must
// hold at least n bytes. It is the allocation-free form of EncodeInt for
// hot paths that own a destination buffer.
func PutInt(dst []byte, n int, v int64) {
	_ = dst[n-1]
	for i := 0; i < n; i++ {
		dst[i] = byte(uint64(v) >> (8 * uint(i)))
	}
}

// EncodeInt returns the n-byte little-endian encoding of v.
func EncodeInt(n int, v int64) []byte {
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		buf[i] = byte(uint64(v) >> (8 * uint(i)))
	}
	return buf
}

// DecodeInt sign-extends an n-byte little-endian encoding.
func DecodeInt(p []byte) int64 {
	var v uint64
	for i, b := range p {
		v |= uint64(b) << (8 * uint(i))
	}
	shift := uint(64 - 8*len(p))
	return int64(v<<shift) >> shift
}

// Vec is one vector register value.
type Vec [NumLanes]int64

// Pred is one predicate register value.
type Pred [NumLanes]bool

// AllTrue returns a fully set predicate.
func AllTrue() Pred {
	var p Pred
	for i := range p {
		p[i] = true
	}
	return p
}

// Any reports whether any lane is set.
func (p Pred) Any() bool {
	for _, b := range p {
		if b {
			return true
		}
	}
	return false
}

// Count returns the number of set lanes.
func (p Pred) Count() int {
	n := 0
	for _, b := range p {
		if b {
			n++
		}
	}
	return n
}

// Oldest returns the lowest set lane index, or NumLanes if none.
func (p Pred) Oldest() int {
	for i, b := range p {
		if b {
			return i
		}
	}
	return NumLanes
}

// Counts aggregates dynamic-execution statistics from an interpreter run.
type Counts struct {
	Insts        int64 // dynamic instructions
	PerOp        [numOps]int64
	MemOps       int64 // dynamic memory instructions
	MicroOps     int64 // micro-ops after gather/scatter splitting
	ConflictCmps int64 // element comparisons performed by v_conflict
	Replays      int64 // SRV replay rounds triggered
	ReplayLanes  int64 // total lanes re-executed across replays
	Regions      int64 // SRV region completions
	VectorIters  int64 // region executions including replays
}

// Of returns the dynamic count of one opcode.
func (c *Counts) Of(op Op) int64 { return c.PerOp[op] }

// srvStore is a buffered speculative store record inside an SRV region,
// keyed by (SRV-id, lane). SRV-id is the instruction PC (paper §III-C:
// "memory instructions with the same PC are assigned the same SRV-id").
type srvStore struct {
	pc     int
	lane   int
	addr   uint64
	data   []byte
	active bool
}

// srvLoad records the bytes most recently read by (SRV-id, lane).
type srvLoad struct {
	pc     int
	lane   int
	addr   uint64
	size   int
	active bool
}

// seqBefore reports whether access (laneA, pcA) is sequentially older than
// (laneB, pcB). Sequential order within a region is iteration-major: lane
// first (lane k is loop iteration k), program position second.
func seqBefore(laneA, pcA, laneB, pcB int) bool {
	if laneA != laneB {
		return laneA < laneB
	}
	return pcA < pcB
}

// Interp is a sequential functional interpreter. Outside SRV regions it
// executes instructions in program order with immediate memory effects.
// Inside a region it emulates the SRV mechanism functionally: speculative
// stores are buffered, loads forward from sequentially older lanes only,
// horizontal RAW violations mark lanes for replay, and srv_end replays
// violating lanes until the SRV-needs-replay set is empty (paper §III).
type Interp struct {
	Prog *Program
	Mem  Memory

	S  [NumSclRegs]int64
	Vr [NumVecRegs]Vec
	Pr [NumPredReg]Pred

	PC     int
	Halted bool
	Counts Counts

	// SRV region state.
	inRegion    bool
	regionDir   Direction
	regionStart int // PC of instruction after srv_start
	replay      Pred
	needsReplay Pred
	stores      map[[2]int]*srvStore
	loads       map[[2]int]*srvLoad
	storeOrder  [][2]int // allocation order for deterministic writeback tie-break
}

// NewInterp returns an interpreter for prog against mem.
func NewInterp(prog *Program, mem Memory) *Interp {
	return &Interp{Prog: prog, Mem: mem}
}

// Run executes until Halt or maxSteps instructions. It returns an error if
// the step budget is exhausted or execution leaves the program.
func (ip *Interp) Run(maxSteps int64) error {
	for !ip.Halted {
		if ip.Counts.Insts >= maxSteps {
			return fmt.Errorf("isa: step budget %d exhausted at pc %d", maxSteps, ip.PC)
		}
		if err := ip.Step(); err != nil {
			return err
		}
	}
	return nil
}

// activeLanes combines the instruction's governing predicate with the
// SRV-replay register when inside a region (paper §III: execution on each
// lane is guarded by the SRV-replay register).
func (ip *Interp) activeLanes(in *Inst) Pred {
	var act Pred
	for i := 0; i < NumLanes; i++ {
		act[i] = true
	}
	if in.Pg != NoPred {
		act = ip.Pr[in.Pg]
	}
	if ip.inRegion && in.IsVector() {
		for i := 0; i < NumLanes; i++ {
			act[i] = act[i] && ip.replay[i]
		}
	}
	return act
}

// Step executes one instruction.
func (ip *Interp) Step() error {
	if ip.PC < 0 || ip.PC >= ip.Prog.Len() {
		return fmt.Errorf("isa: pc %d outside program", ip.PC)
	}
	in := ip.Prog.At(ip.PC)
	ip.Counts.Insts++
	ip.Counts.PerOp[in.Op]++
	if in.IsMem() {
		ip.Counts.MemOps++
	}
	if in.IsGatherScatter() {
		ip.Counts.MicroOps += NumLanes
	} else {
		ip.Counts.MicroOps++
	}
	next := ip.PC + 1
	act := ip.activeLanes(in)

	switch in.Op {
	case OpNop:
	case OpHalt:
		ip.Halted = true
	case OpMovI:
		ip.S[in.Rd] = in.Imm
	case OpMov:
		ip.S[in.Rd] = ip.S[in.Rs1]
	case OpAdd:
		ip.S[in.Rd] = ip.S[in.Rs1] + ip.S[in.Rs2]
	case OpAddI:
		ip.S[in.Rd] = ip.S[in.Rs1] + in.Imm
	case OpSub:
		ip.S[in.Rd] = ip.S[in.Rs1] - ip.S[in.Rs2]
	case OpMul:
		ip.S[in.Rd] = ip.S[in.Rs1] * ip.S[in.Rs2]
	case OpAnd:
		ip.S[in.Rd] = ip.S[in.Rs1] & ip.S[in.Rs2]
	case OpOr:
		ip.S[in.Rd] = ip.S[in.Rs1] | ip.S[in.Rs2]
	case OpXor:
		ip.S[in.Rd] = ip.S[in.Rs1] ^ ip.S[in.Rs2]
	case OpShlI:
		ip.S[in.Rd] = ip.S[in.Rs1] << uint(in.Imm)
	case OpShrI:
		ip.S[in.Rd] = int64(uint64(ip.S[in.Rs1]) >> uint(in.Imm))
	case OpLoad:
		ip.S[in.Rd] = ip.loadScalar(uint64(ip.S[in.Rs1])+uint64(in.Imm), in.Elem, in)
	case OpStore:
		ip.storeScalar(uint64(ip.S[in.Rs1])+uint64(in.Imm), in.Elem, ip.S[in.Rs2], in)
	case OpJmp:
		next = in.Tgt
	case OpBEQ:
		if ip.S[in.Rs1] == ip.S[in.Rs2] {
			next = in.Tgt
		}
	case OpBNE:
		if ip.S[in.Rs1] != ip.S[in.Rs2] {
			next = in.Tgt
		}
	case OpBLT:
		if ip.S[in.Rs1] < ip.S[in.Rs2] {
			next = in.Tgt
		}
	case OpBGE:
		if ip.S[in.Rs1] >= ip.S[in.Rs2] {
			next = in.Tgt
		}

	case OpVMov:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] })
	case OpVAdd:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] + ip.Vr[in.Rs2][i] })
	case OpVSub:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] - ip.Vr[in.Rs2][i] })
	case OpVMul:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] * ip.Vr[in.Rs2][i] })
	case OpVMulAdd:
		ip.vmerge(in.Rd, act, func(i int) int64 {
			return ip.Vr[in.Rs1][i]*ip.Vr[in.Rs2][i] + ip.Vr[in.Rd][i]
		})
	case OpVAddI:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] + in.Imm })
	case OpVMulI:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] * in.Imm })
	case OpVAnd:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] & ip.Vr[in.Rs2][i] })
	case OpVXor:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] ^ ip.Vr[in.Rs2][i] })
	case OpVShrI:
		ip.vmerge(in.Rd, act, func(i int) int64 { return int64(uint64(ip.Vr[in.Rs1][i]) >> uint(in.Imm)) })
	case OpVAndI:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] & in.Imm })
	case OpVAddS:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] + ip.S[in.Rs2] })
	case OpVMulS:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.Vr[in.Rs1][i] * ip.S[in.Rs2] })
	case OpVSplat:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.S[in.Rs1] })
	case OpVIota:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.S[in.Rs1] + int64(i) })
	case OpVIotaRev:
		ip.vmerge(in.Rd, act, func(i int) int64 { return ip.S[in.Rs1] + int64(NumLanes-1-i) })
	case OpVSel:
		ip.vmerge(in.Rd, act, func(i int) int64 {
			// VSel uses Pg as the selector and always writes every lane the
			// replay mask allows; here act already folds both in.
			return ip.Vr[in.Rs1][i]
		})
		// Lanes where the governing predicate was false select Vs2.
		for i := 0; i < NumLanes; i++ {
			sel := in.Pg == NoPred || ip.Pr[in.Pg][i]
			if !sel && (!ip.inRegion || ip.replay[i]) {
				ip.Vr[in.Rd][i] = ip.Vr[in.Rs2][i]
			}
		}

	case OpVCmpLT:
		ip.pmerge(in.Rd, act, func(i int) bool { return ip.Vr[in.Rs1][i] < ip.Vr[in.Rs2][i] })
	case OpVCmpGE:
		ip.pmerge(in.Rd, act, func(i int) bool { return ip.Vr[in.Rs1][i] >= ip.Vr[in.Rs2][i] })
	case OpVCmpEQ:
		ip.pmerge(in.Rd, act, func(i int) bool { return ip.Vr[in.Rs1][i] == ip.Vr[in.Rs2][i] })
	case OpVCmpNE:
		ip.pmerge(in.Rd, act, func(i int) bool { return ip.Vr[in.Rs1][i] != ip.Vr[in.Rs2][i] })
	case OpPTrue:
		ip.pmerge(in.Rd, act, func(int) bool { return true })
	case OpPFalse:
		ip.pmerge(in.Rd, act, func(int) bool { return false })
	case OpPAnd:
		ip.pmerge(in.Rd, act, func(i int) bool { return ip.Pr[in.Rs1][i] && ip.Pr[in.Rs2][i] })
	case OpPOr:
		ip.pmerge(in.Rd, act, func(i int) bool { return ip.Pr[in.Rs1][i] || ip.Pr[in.Rs2][i] })
	case OpPNot:
		ip.pmerge(in.Rd, act, func(i int) bool { return !ip.Pr[in.Rs1][i] })

	case OpVConflict:
		// Pd[i] set when Vs1[i] == Vs2[j] for any enabled earlier lane j<i.
		// Each (i, j) pair costs one comparison (paper §VI-D).
		for i := 0; i < NumLanes; i++ {
			if !act[i] {
				continue
			}
			hit := false
			for j := 0; j < i; j++ {
				if !act[j] {
					continue
				}
				ip.Counts.ConflictCmps++
				if ip.Vr[in.Rs1][i] == ip.Vr[in.Rs2][j] {
					hit = true
				}
			}
			ip.Pr[in.Rd][i] = hit
		}

	case OpVLoad:
		base := uint64(ip.S[in.Rs1]) + uint64(in.Imm)
		for i := 0; i < NumLanes; i++ {
			a := base + uint64(ip.contigOff(i)*in.Elem)
			if act[i] {
				ip.Vr[in.Rd][i] = ip.loadVecLane(a, in.Elem, i)
			}
			ip.recordLoadLane(a, in.Elem, i, act[i])
		}
	case OpVBcast:
		a := uint64(ip.S[in.Rs1]) + uint64(in.Imm)
		for i := 0; i < NumLanes; i++ {
			if act[i] {
				ip.Vr[in.Rd][i] = ip.loadVecLane(a, in.Elem, i)
			}
			ip.recordLoadLane(a, in.Elem, i, act[i])
		}
	case OpVGather:
		base := uint64(ip.S[in.Rs1]) + uint64(in.Imm)
		for i := 0; i < NumLanes; i++ {
			a := base + uint64(ip.Vr[in.Rs2][i]*int64(in.Elem))
			if act[i] {
				ip.Vr[in.Rd][i] = ip.loadVecLane(a, in.Elem, i)
			}
			ip.recordLoadLane(a, in.Elem, i, act[i])
		}
	case OpVStore:
		base := uint64(ip.S[in.Rs1]) + uint64(in.Imm)
		for i := 0; i < NumLanes; i++ {
			a := base + uint64(ip.contigOff(i)*in.Elem)
			ip.storeVecLane(a, in.Elem, ip.Vr[in.Rs2][i], i, act[i])
		}
	case OpVScatter:
		base := uint64(ip.S[in.Rs1]) + uint64(in.Imm)
		for i := 0; i < NumLanes; i++ {
			a := base + uint64(ip.Vr[in.Rs2][i]*int64(in.Elem))
			ip.storeVecLane(a, in.Elem, ip.Vr[in.Rs3][i], i, act[i])
		}

	case OpSRVStart:
		if ip.inRegion {
			return fmt.Errorf("isa: nested srv_start at pc %d (regions cannot nest)", ip.PC)
		}
		ip.inRegion = true
		ip.regionDir = in.Dir
		ip.regionStart = ip.PC + 1
		ip.replay = AllTrue()
		ip.needsReplay = Pred{}
		ip.stores = make(map[[2]int]*srvStore)
		ip.loads = make(map[[2]int]*srvLoad)
		ip.storeOrder = ip.storeOrder[:0]
		ip.Counts.VectorIters++
	case OpSRVEnd:
		if !ip.inRegion {
			return fmt.Errorf("isa: srv_end without srv_start at pc %d", ip.PC)
		}
		if ip.needsReplay.Any() {
			ip.replay = ip.needsReplay
			ip.needsReplay = Pred{}
			ip.Counts.Replays++
			ip.Counts.ReplayLanes += int64(ip.replay.Count())
			ip.Counts.VectorIters++
			next = ip.regionStart
		} else {
			ip.commitRegion()
			ip.inRegion = false
			ip.Counts.Regions++
		}
	default:
		return fmt.Errorf("isa: unimplemented opcode %v at pc %d", in.Op, ip.PC)
	}

	ip.PC = next
	return nil
}

// contigOff maps a lane to its element offset within a contiguous access:
// identity normally, reversed inside a DOWN region (the srv_start attribute
// of paper §III-A — lane number increases as the address decreases).
func (ip *Interp) contigOff(lane int) int {
	if ip.inRegion && ip.regionDir == DirDown {
		return NumLanes - 1 - lane
	}
	return lane
}

func (ip *Interp) vmerge(rd int, act Pred, f func(i int) int64) {
	for i := 0; i < NumLanes; i++ {
		if act[i] {
			ip.Vr[rd][i] = f(i)
		}
	}
}

func (ip *Interp) pmerge(rd int, act Pred, f func(i int) bool) {
	for i := 0; i < NumLanes; i++ {
		if act[i] {
			ip.Pr[rd][i] = f(i)
		}
	}
}

// loadScalar performs a scalar load; scalar accesses inside an SRV region are
// kept outside by the compiler, so they always hit memory directly.
func (ip *Interp) loadScalar(addr uint64, n int, in *Inst) int64 {
	_ = in
	return ReadInt(ip.Mem, addr, n)
}

func (ip *Interp) storeScalar(addr uint64, n int, v int64, in *Inst) {
	_ = in
	WriteInt(ip.Mem, addr, n, v)
}

// loadVecLane resolves one lane's loaded value. Inside a region each byte
// comes from the sequentially-youngest older buffered store covering it, or
// from memory (partial store-to-load forwarding, paper §III-B1).
func (ip *Interp) loadVecLane(addr uint64, n, lane int) int64 {
	if !ip.inRegion {
		return ReadInt(ip.Mem, addr, n)
	}
	buf := make([]byte, n)
	ip.Mem.ReadBytes(addr, buf)
	loadPC := ip.PC
	for b := 0; b < n; b++ {
		byteAddr := addr + uint64(b)
		var best *srvStore
		bestOff := 0
		for _, st := range ip.stores {
			if !st.active {
				continue
			}
			if byteAddr < st.addr || byteAddr >= st.addr+uint64(len(st.data)) {
				continue
			}
			// Only sequentially older stores may forward (WAR rule: data
			// from later lanes is not forwardable).
			if !seqBefore(st.lane, st.pc, lane, loadPC) {
				continue
			}
			if best == nil || seqBefore(best.lane, best.pc, st.lane, st.pc) {
				best = st
				bestOff = int(byteAddr - st.addr)
			}
		}
		if best != nil {
			buf[b] = best.data[bestOff]
		}
	}
	return DecodeInt(buf)
}

// recordLoadLane tracks the bytes a load lane most recently read so that a
// later-issuing store can detect horizontal RAW violations against it.
func (ip *Interp) recordLoadLane(addr uint64, n, lane int, active bool) {
	if !ip.inRegion {
		return
	}
	key := [2]int{ip.PC, lane}
	rec := ip.loads[key]
	if rec == nil {
		// First execution of the region issues every memory instruction so
		// all LSU entries exist, even for predicate-off lanes (paper §III-C).
		rec = &srvLoad{pc: ip.PC, lane: lane}
		ip.loads[key] = rec
	}
	if !active {
		// An inactive lane leaves its existing entry unchanged.
		return
	}
	rec.addr, rec.size, rec.active = addr, n, true
}

// storeVecLane buffers one lane of a vector store and performs horizontal
// RAW detection: any load in a sequentially younger position that already
// read an overlapping byte has consumed stale data, so its lane is marked in
// the SRV-needs-replay register (paper §III-B2).
func (ip *Interp) storeVecLane(addr uint64, n int, v int64, lane int, active bool) {
	if !ip.inRegion {
		if active {
			WriteInt(ip.Mem, addr, n, v)
		}
		return
	}
	key := [2]int{ip.PC, lane}
	rec := ip.stores[key]
	if rec == nil {
		rec = &srvStore{pc: ip.PC, lane: lane}
		ip.stores[key] = rec
		ip.storeOrder = append(ip.storeOrder, key)
	}
	if !active {
		// An inactive lane leaves its existing entry unchanged; on the first
		// pass this pre-allocates the entry without marking bytes.
		return
	}
	rec.addr, rec.active = addr, true
	rec.data = EncodeInt(n, v)
	storePC := ip.PC
	for _, ld := range ip.loads {
		if !ld.active {
			continue
		}
		// Only sequentially younger loads can have consumed stale data.
		if !seqBefore(lane, storePC, ld.lane, ld.pc) {
			continue
		}
		// A load at a later program position whose lane is in the current
		// replay mask will (re-)execute after this store in this round and
		// pick up the fresh data through forwarding; its recorded access is
		// from a previous round and must not trigger a replay.
		if ip.replay[ld.lane] && ld.pc > storePC {
			continue
		}
		if addr < ld.addr+uint64(ld.size) && ld.addr < addr+uint64(n) {
			ip.needsReplay[ld.lane] = true
		}
	}
}

// commitRegion writes buffered stores back in sequential order so the
// youngest store to each byte wins (WAW resolution, paper §III-B3).
func (ip *Interp) commitRegion() {
	keys := make([][2]int, 0, len(ip.stores))
	for k, st := range ip.stores {
		if st.active {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		sa, sb := ip.stores[keys[a]], ip.stores[keys[b]]
		return seqBefore(sa.lane, sa.pc, sb.lane, sb.pc)
	})
	for _, k := range keys {
		st := ip.stores[k]
		ip.Mem.WriteBytes(st.addr, st.data)
	}
}

// InRegion reports whether execution is currently inside an SRV region.
func (ip *Interp) InRegion() bool { return ip.inRegion }

// NeedsReplay exposes the SRV-needs-replay register for tests.
func (ip *Interp) NeedsReplay() Pred { return ip.needsReplay }

// ReplayMask exposes the SRV-replay register for tests.
func (ip *Interp) ReplayMask() Pred { return ip.replay }
