package isa

import (
	"strings"
	"testing"

	"srvsim/internal/mem"
)

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder()
	b.MovI(0, 0)
	b.Label("loop")
	b.AddI(0, 0, 1)
	b.MovI(1, 10)
	b.BLT(0, 1, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["loop"] != 1 {
		t.Errorf("label loop = %d, want 1", p.Labels["loop"])
	}
	if p.At(3).Tgt != 1 {
		t.Errorf("branch target = %d, want 1", p.At(3).Tgt)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder().Jmp("nowhere").Build()
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("want undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("want duplicate-label error")
	}
}

func TestReadsWritesMergingPredication(t *testing.T) {
	// A predicated vector add reads its old destination (paper §III-D5).
	in := Inst{Op: OpVAdd, Rd: 3, Rs1: 1, Rs2: 2, Pg: 0}
	reads := in.Reads()
	found := false
	for _, r := range reads {
		if r == V(3) {
			found = true
		}
	}
	if !found {
		t.Errorf("predicated v_add should read old destination; reads = %v", reads)
	}
	// Unpredicated: no old-destination read.
	in.Pg = NoPred
	for _, r := range in.Reads() {
		if r == V(3) {
			t.Errorf("unpredicated v_add should not read old destination")
		}
	}
	if w := in.Writes(); len(w) != 1 || w[0] != V(3) {
		t.Errorf("writes = %v, want [v3]", w)
	}
}

func TestInstClassification(t *testing.T) {
	g := Inst{Op: OpVGather}
	if !g.IsMem() || !g.IsLoad() || g.IsStore() || !g.IsGatherScatter() || !g.IsVector() {
		t.Error("gather misclassified")
	}
	s := Inst{Op: OpStore}
	if !s.IsMem() || s.IsLoad() || !s.IsStore() || s.IsVector() {
		t.Error("scalar store misclassified")
	}
	br := Inst{Op: OpBNE}
	if !br.IsBranch() || !br.IsCondBranch() || br.IsVector() {
		t.Error("bne misclassified")
	}
	j := Inst{Op: OpJmp}
	if !j.IsBranch() || j.IsCondBranch() {
		t.Error("jmp misclassified")
	}
}

func TestDisassembly(t *testing.T) {
	p := NewBuilder().
		VLoad(0, 1, 0, 4, NoPred).
		VAddI(0, 0, 2, 2).
		SRVStart(DirUp).
		MustBuild()
	s := p.String()
	for _, want := range []string{"v_load", "v_addi", "?p2", "srv_start", "UP"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

// Nop is a small test helper on Builder.
func (b *Builder) Nop() *Builder { return b.Emit(Inst{Op: OpNop, Pg: NoPred}) }

func TestInterpScalarLoop(t *testing.T) {
	// sum = 0; for i in 0..9 { sum += i }
	im := mem.NewImage()
	p := NewBuilder().
		MovI(0, 0). // i
		MovI(1, 0). // sum
		MovI(2, 10).
		Label("loop").
		Add(1, 1, 0).
		AddI(0, 0, 1).
		BLT(0, 2, "loop").
		Halt().
		MustBuild()
	ip := NewInterp(p, im)
	if err := ip.Run(1000); err != nil {
		t.Fatal(err)
	}
	if ip.S[1] != 45 {
		t.Errorf("sum = %d, want 45", ip.S[1])
	}
	if ip.Counts.Of(OpAdd) != 10 {
		t.Errorf("dynamic adds = %d, want 10", ip.Counts.Of(OpAdd))
	}
}

func TestInterpStepBudget(t *testing.T) {
	p := NewBuilder().Label("x").Jmp("x").MustBuild()
	ip := NewInterp(p, mem.NewImage())
	if err := ip.Run(100); err == nil {
		t.Fatal("infinite loop should exhaust step budget")
	}
}

func TestInterpVectorArithmeticAndPredication(t *testing.T) {
	im := mem.NewImage()
	base := im.Alloc(NumLanes*4, 64)
	for i := 0; i < NumLanes; i++ {
		im.WriteInt(base+uint64(i*4), 4, int64(i))
	}
	p := NewBuilder().
		MovI(0, int64(base)).
		MovI(1, 8).
		VLoad(0, 0, 0, 4, NoPred). // v0 = 0..15
		VSplat(1, 1).              // v1 = 8
		VCmpLT(0, 0, 1, NoPred).   // p0 = lane < 8
		VAddI(2, 0, 100, 0).       // v2 = v0+100 where p0 (merging)
		VStore(0, 0, 4, 2, NoPred).
		Halt().
		MustBuild()
	ip := NewInterp(p, im)
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumLanes; i++ {
		got := im.ReadInt(base+uint64(i*4), 4)
		want := int64(i + 100)
		if i >= 8 {
			// v2 was never written in these lanes; zero register value.
			want = 0
		}
		if got != want {
			t.Errorf("lane %d = %d, want %d", i, got, want)
		}
	}
}

func TestInterpGatherScatter(t *testing.T) {
	im := mem.NewImage()
	src := im.Alloc(NumLanes*4, 64)
	dst := im.Alloc(NumLanes*4, 64)
	idx := im.Alloc(NumLanes*4, 64)
	for i := 0; i < NumLanes; i++ {
		im.WriteInt(src+uint64(i*4), 4, int64(i*10))
		im.WriteInt(idx+uint64(i*4), 4, int64(NumLanes-1-i)) // reverse permutation
	}
	p := NewBuilder().
		MovI(0, int64(src)).
		MovI(1, int64(dst)).
		MovI(2, int64(idx)).
		VLoad(1, 2, 0, 4, NoPred).       // v1 = indices
		VGather(0, 0, 1, 0, 4, NoPred).  // v0 = src[idx[i]]
		VIota(2, 31).                    // v2 = 0..15 (s31 == 0)
		VScatter(1, 2, 0, 0, 4, NoPred). // dst[i] = v0[i]
		Halt().
		MustBuild()
	ip := NewInterp(p, im)
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumLanes; i++ {
		got := im.ReadInt(dst+uint64(i*4), 4)
		want := int64((NumLanes - 1 - i) * 10)
		if got != want {
			t.Errorf("dst[%d] = %d, want %d", i, got, want)
		}
	}
	if ip.Counts.MicroOps < int64(ip.Counts.Insts)+2*(NumLanes-1) {
		t.Errorf("gather/scatter should expand to %d micro-ops each", NumLanes)
	}
}

func TestInterpVConflictCounting(t *testing.T) {
	im := mem.NewImage()
	p := NewBuilder().
		MovI(0, 5).
		VSplat(0, 0). // all lanes equal -> conflicts everywhere
		VIota(1, 31). // distinct
		VConflict(0, 0, 0, NoPred).
		VConflict(1, 1, 1, NoPred).
		Halt().
		MustBuild()
	ip := NewInterp(p, im)
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	// Lane i compares against i earlier lanes: sum 0..15 = 120 per inst.
	if ip.Counts.ConflictCmps != 240 {
		t.Errorf("conflict comparisons = %d, want 240", ip.Counts.ConflictCmps)
	}
	for i := 1; i < NumLanes; i++ {
		if !ip.Pr[0][i] {
			t.Errorf("splat conflict lane %d should be set", i)
		}
		if ip.Pr[1][i] {
			t.Errorf("iota conflict lane %d should be clear", i)
		}
	}
	if ip.Pr[0][0] {
		t.Error("lane 0 can never conflict")
	}
}

// buildListing1 assembles the paper's listing 2 (the SRV form of listing 1):
//
//	for i in 0..n-1: a[x[i]] = a[i] + 2
//
// vectorised 16 iterations at a time inside an SRV region.
func buildListing1(aBase, xBase uint64, n int) *Program {
	const (
		sI, sN, sA, sX, sA0 = 0, 1, 2, 3, 4
		vA, vX              = 0, 1
	)
	return NewBuilder().
		MovI(sI, 0).
		MovI(sN, int64(n)).
		MovI(sA, int64(aBase)).  // moving pointer &a[i]
		MovI(sX, int64(xBase)).  // moving pointer &x[i]
		MovI(sA0, int64(aBase)). // fixed base of a (x holds absolute indices)
		Label("loop").
		SRVStart(DirUp).
		VLoad(vA, sA, 0, 4, NoPred).         // v0 = a[i:i+15]
		VAddI(vA, vA, 2, NoPred).            // v0 += 2
		VLoad(vX, sX, 0, 4, NoPred).         // v1 = x[i:i+15]
		VScatter(sA0, vX, vA, 0, 4, NoPred). // a[x[i]] = v0
		SRVEnd().
		AddI(sI, sI, 16).
		AddI(sA, sA, 64).
		AddI(sX, sX, 64).
		BLT(sI, sN, "loop").
		Halt().
		MustBuild()
}

// scalarListing1 computes the reference result directly.
func scalarListing1(a []int64, x []int64) {
	for i := range x {
		a[x[i]] = a[i] + 2
	}
}

func setupListing1(n int, xs []int64) (*mem.Image, uint64, uint64) {
	im := mem.NewImage()
	aBase := im.Alloc(4*(n+16), 64)
	xBase := im.Alloc(4*n, 64)
	for i := 0; i < n; i++ {
		im.WriteInt(aBase+uint64(i*4), 4, int64(i*3+1))
		im.WriteInt(xBase+uint64(i*4), 4, xs[i])
	}
	return im, aBase, xBase
}

// paperIndices builds the index pattern from the paper's listing 1:
// {3,0,1,2, 7,4,5,6, 11,8,9,10, ...} — a RAW violation every four iterations.
func paperIndices(n int) []int64 {
	xs := make([]int64, n)
	for i := 0; i < n; i += 4 {
		xs[i] = int64(i + 3)
		for j := 1; j < 4 && i+j < n; j++ {
			xs[i+j] = int64(i + j - 1)
		}
	}
	return xs
}

func TestInterpSRVListing1MatchesScalar(t *testing.T) {
	const n = 32
	xs := paperIndices(n)
	im, aBase, xBase := setupListing1(n, xs)

	// Scalar reference.
	a := make([]int64, n+16)
	for i := range a {
		if i < n {
			a[i] = int64(i*3 + 1)
		}
	}
	scalarListing1(a[:n], xs)

	ip := NewInterp(buildListing1(aBase, xBase, n), im)
	if err := ip.Run(10000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := im.ReadInt(aBase+uint64(i*4), 4)
		if got != a[i] {
			t.Errorf("a[%d] = %d, want %d", i, got, a[i])
		}
	}
	// The paper's example: lanes 3,7,11,15 violate, exactly one replay per
	// region ("ideally we can vectorise and execute this loop in just two
	// iterations").
	if ip.Counts.Regions != 2 {
		t.Errorf("regions = %d, want 2", ip.Counts.Regions)
	}
	if ip.Counts.Replays != 2 {
		t.Errorf("replays = %d, want 2 (one per region)", ip.Counts.Replays)
	}
	if ip.Counts.ReplayLanes != 8 {
		t.Errorf("replayed lanes = %d, want 8 (4 per region)", ip.Counts.ReplayLanes)
	}
}

func TestInterpSRVNoViolationsNoReplay(t *testing.T) {
	const n = 32
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i) // identity: a[i] = a[i]+2, same-lane, no violation
	}
	im, aBase, xBase := setupListing1(n, xs)
	ip := NewInterp(buildListing1(aBase, xBase, n), im)
	if err := ip.Run(10000); err != nil {
		t.Fatal(err)
	}
	if ip.Counts.Replays != 0 {
		t.Errorf("replays = %d, want 0", ip.Counts.Replays)
	}
	for i := 0; i < n; i++ {
		want := int64(i*3 + 1 + 2)
		if got := im.ReadInt(aBase+uint64(i*4), 4); got != want {
			t.Errorf("a[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestInterpSRVFullChainDependence(t *testing.T) {
	// x[i] = i+1: a[i+1] = a[i]+2 — a serial chain; every lane except 0
	// depends on the previous. SRV must still produce the sequential result,
	// with at most NumLanes-1 replays per region.
	const n = 16
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i + 1)
	}
	im, aBase, xBase := setupListing1(n, xs)
	a := make([]int64, n+16)
	for i := 0; i < n; i++ {
		a[i] = int64(i*3 + 1)
	}
	scalarListing1(a, xs) // x[n-1] = n writes one past the loop range
	ip := NewInterp(buildListing1(aBase, xBase, n), im)
	if err := ip.Run(100000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= n; i++ {
		if got := im.ReadInt(aBase+uint64(i*4), 4); got != a[i] {
			t.Errorf("a[%d] = %d, want %d", i, got, a[i])
		}
	}
	if ip.Counts.Replays > NumLanes-1 {
		t.Errorf("replays = %d, exceeds bound %d", ip.Counts.Replays, NumLanes-1)
	}
	if ip.Counts.Replays == 0 {
		t.Error("serial chain must trigger replays")
	}
}

func TestInterpSRVNestedRegionRejected(t *testing.T) {
	p := NewBuilder().SRVStart(DirUp).SRVStart(DirUp).SRVEnd().SRVEnd().Halt().MustBuild()
	ip := NewInterp(p, mem.NewImage())
	if err := ip.Run(10); err == nil {
		t.Fatal("nested srv_start must be rejected")
	}
}

func TestInterpSRVEndWithoutStartRejected(t *testing.T) {
	p := NewBuilder().SRVEnd().Halt().MustBuild()
	ip := NewInterp(p, mem.NewImage())
	if err := ip.Run(10); err == nil {
		t.Fatal("srv_end without srv_start must be rejected")
	}
}

func TestInterpSRVWARHandledByForwardingSuppression(t *testing.T) {
	// Listing 3 pattern: store x[i:i+15]; load x[i+8:i+23]. The load's lanes
	// 0..7 overlap the store's lanes 8..15 — later lanes, so the loaded data
	// must come from memory (pre-store values), not the store (WAR).
	im := mem.NewImage()
	x := im.Alloc(64, 64)
	for i := 0; i < 32; i++ {
		im.WriteInt(x+uint64(i), 1, int64(i)) // x[i] = i
	}
	p := NewBuilder().
		MovI(0, int64(x)).
		MovI(1, 99).
		SRVStart(DirUp).
		VSplat(0, 1).               // v0 = 99 everywhere
		VStore(0, 0, 1, 0, NoPred). // x[0:15] = 99  (instruction A)
		VLoad(1, 0, 8, 1, NoPred).  // v1 = x[8:23]  (instruction C)
		SRVEnd().
		Halt().
		MustBuild()
	ip := NewInterp(p, im)
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	// Sequential semantics: iteration k stores x[k]=99 then iteration k
	// loads x[k+8]. Load lane k reads x[k+8]: iterations (lanes) that would
	// have stored to x[k+8] are lane k+8 > k, i.e. later — so the original
	// values must be loaded.
	for k := 0; k < NumLanes; k++ {
		want := int64(k + 8)
		if ip.Vr[1][k] != want {
			t.Errorf("lane %d loaded %d, want pre-store value %d", k, ip.Vr[1][k], want)
		}
	}
	if ip.Counts.Replays != 0 {
		t.Errorf("WAR must be handled without replay, got %d replays", ip.Counts.Replays)
	}
}

func TestInterpSRVVerticalForwarding(t *testing.T) {
	// Listing 3 instructions A and B: store then load of the same span —
	// a vertical dependence; every byte forwards from the store.
	im := mem.NewImage()
	x := im.Alloc(64, 64)
	p := NewBuilder().
		MovI(0, int64(x)).
		MovI(1, 7).
		SRVStart(DirUp).
		VSplat(0, 1).
		VStore(0, 0, 1, 0, NoPred). // x[0:15] = 7
		VLoad(1, 0, 0, 1, NoPred).  // v1 = x[0:15]
		SRVEnd().
		Halt().
		MustBuild()
	ip := NewInterp(p, im)
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < NumLanes; k++ {
		if ip.Vr[1][k] != 7 {
			t.Errorf("lane %d = %d, want forwarded 7", k, ip.Vr[1][k])
		}
	}
	if ip.Counts.Replays != 0 {
		t.Errorf("vertical same-lane forwarding needs no replay, got %d", ip.Counts.Replays)
	}
}

func TestInterpSRVWAWYoungestWins(t *testing.T) {
	// Two scatters writing the same address from different lanes: the
	// sequentially youngest (higher lane) value must win in memory.
	im := mem.NewImage()
	tbl := im.Alloc(64, 64)
	idx := im.Alloc(64, 64)
	val := im.Alloc(64, 64)
	for i := 0; i < NumLanes; i++ {
		im.WriteInt(idx+uint64(i*4), 4, 5) // all lanes write tbl[5]
		im.WriteInt(val+uint64(i*4), 4, int64(i*100))
	}
	p := NewBuilder().
		MovI(0, int64(tbl)).
		MovI(1, int64(idx)).
		MovI(2, int64(val)).
		SRVStart(DirUp).
		VLoad(0, 1, 0, 4, NoPred).
		VLoad(1, 2, 0, 4, NoPred).
		VScatter(0, 0, 1, 0, 4, NoPred). // tbl[5] = lane value, all lanes
		SRVEnd().
		Halt().
		MustBuild()
	ip := NewInterp(p, im)
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := im.ReadInt(tbl+5*4, 4); got != 1500 {
		t.Errorf("tbl[5] = %d, want youngest lane's 1500", got)
	}
}
