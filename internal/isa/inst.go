package isa

import (
	"fmt"
	"strings"
)

// NoPred marks an instruction with no governing predicate: all lanes execute.
const NoPred = -1

// Inst is one decoded instruction. The operand fields are interpreted per
// opcode as documented alongside each Op constant.
type Inst struct {
	Op   Op
	Rd   int   // destination register (scalar, vector or predicate file)
	Rs1  int   // first source
	Rs2  int   // second source
	Rs3  int   // third source (scatter data)
	Pg   int   // governing predicate register, or NoPred
	Imm  int64 // immediate / address offset
	Elem int   // element size in bytes for memory ops
	Dir  Direction
	FP   bool   // floating-point class (affects functional-unit latency only)
	Lbl  string // unresolved branch target label
	Tgt  int    // resolved branch target (instruction index)
}

// RegClass identifies a register file.
type RegClass int

const (
	RegScalar RegClass = iota
	RegVector
	RegPred
)

func (c RegClass) String() string {
	switch c {
	case RegVector:
		return "v"
	case RegPred:
		return "p"
	default:
		return "s"
	}
}

// RegRef names one register in a specific file.
type RegRef struct {
	Class RegClass
	Idx   int
}

func (r RegRef) String() string { return fmt.Sprintf("%v%d", r.Class, r.Idx) }

// S, V and P build register references.
func S(i int) RegRef { return RegRef{RegScalar, i} }
func V(i int) RegRef { return RegRef{RegVector, i} }
func P(i int) RegRef { return RegRef{RegPred, i} }

// IsVector reports whether the instruction operates on vector or predicate
// state (used for functional-unit port accounting).
func (in *Inst) IsVector() bool {
	switch in.Op {
	case OpVMov, OpVAdd, OpVSub, OpVMul, OpVMulAdd, OpVAddI, OpVMulI, OpVAnd,
		OpVXor, OpVShrI, OpVAndI, OpVAddS, OpVMulS, OpVSplat, OpVIota,
		OpVIotaRev, OpVSel,
		OpVCmpLT, OpVCmpGE, OpVCmpEQ, OpVCmpNE, OpPTrue, OpPFalse, OpPAnd,
		OpPOr, OpPNot, OpVLoad, OpVStore, OpVGather, OpVScatter, OpVBcast,
		OpVConflict:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses memory.
func (in *Inst) IsMem() bool {
	switch in.Op {
	case OpLoad, OpStore, OpVLoad, OpVStore, OpVGather, OpVScatter, OpVBcast:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads memory.
func (in *Inst) IsLoad() bool {
	switch in.Op {
	case OpLoad, OpVLoad, OpVGather, OpVBcast:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes memory.
func (in *Inst) IsStore() bool {
	switch in.Op {
	case OpStore, OpVStore, OpVScatter:
		return true
	}
	return false
}

// IsGatherScatter reports whether the access is lane-indexed (split into one
// micro-op and one LSU entry per lane, paper §III-B).
func (in *Inst) IsGatherScatter() bool {
	return in.Op == OpVGather || in.Op == OpVScatter
}

// IsBranch reports whether the instruction may redirect control flow.
func (in *Inst) IsBranch() bool {
	switch in.Op {
	case OpJmp, OpBEQ, OpBNE, OpBLT, OpBGE:
		return true
	}
	return false
}

// IsCondBranch reports whether the branch outcome depends on register state.
func (in *Inst) IsCondBranch() bool {
	switch in.Op {
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return true
	}
	return false
}

// Reads returns the registers the instruction reads, including the old
// destination of merging-predicated vector ops (paper §III-D5: "instructions
// write into new physical registers, they also need to read the old
// destination physical registers as source operands").
func (in *Inst) Reads() []RegRef {
	return in.AppendReads(nil)
}

// AppendReads appends the instruction's source registers to dst and returns
// the extended slice, in the same order as Reads. Dispatch runs this once
// per instruction with a reusable scratch buffer, so the hot path never
// allocates.
func (in *Inst) AppendReads(dst []RegRef) []RegRef {
	r := dst
	switch in.Op {
	case OpNop, OpHalt, OpMovI, OpJmp, OpPTrue, OpPFalse, OpSRVStart, OpSRVEnd:
	case OpMov, OpAddI, OpShlI, OpShrI:
		r = append(r, S(in.Rs1))
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpBEQ, OpBNE, OpBLT, OpBGE:
		r = append(r, S(in.Rs1), S(in.Rs2))
	case OpLoad:
		r = append(r, S(in.Rs1))
	case OpStore:
		r = append(r, S(in.Rs1), S(in.Rs2))
	case OpVMov, OpVAddI, OpVMulI, OpVShrI, OpVAndI:
		r = append(r, V(in.Rs1))
	case OpVAdd, OpVSub, OpVMul, OpVAnd, OpVXor, OpVConflict:
		r = append(r, V(in.Rs1), V(in.Rs2))
	case OpVMulAdd:
		r = append(r, V(in.Rs1), V(in.Rs2), V(in.Rd))
	case OpVAddS, OpVMulS:
		r = append(r, V(in.Rs1), S(in.Rs2))
	case OpVSplat, OpVIota, OpVIotaRev:
		r = append(r, S(in.Rs1))
	case OpVSel:
		r = append(r, V(in.Rs1), V(in.Rs2))
	case OpVCmpLT, OpVCmpGE, OpVCmpEQ, OpVCmpNE:
		r = append(r, V(in.Rs1), V(in.Rs2))
	case OpPAnd, OpPOr:
		r = append(r, P(in.Rs1), P(in.Rs2))
	case OpPNot:
		r = append(r, P(in.Rs1))
	case OpVLoad, OpVBcast:
		r = append(r, S(in.Rs1))
	case OpVStore:
		r = append(r, S(in.Rs1), V(in.Rs2))
	case OpVGather:
		r = append(r, S(in.Rs1), V(in.Rs2))
	case OpVScatter:
		r = append(r, S(in.Rs1), V(in.Rs2), V(in.Rs3))
	}
	if in.Pg != NoPred {
		r = append(r, P(in.Pg))
	}
	// Merging predication: a predicated writer of a vector/predicate register
	// also reads its old destination value.
	if in.Pg != NoPred {
		if w, ok := in.writeRef(); ok && w.Class != RegScalar {
			r = append(r, w)
		}
	}
	return r
}

// WriteReg returns the destination register, if any, without allocating
// (Writes wraps it in a slice; dispatch wants the scalar form).
func (in *Inst) WriteReg() (RegRef, bool) { return in.writeRef() }

// writeRef returns the destination register, if any.
func (in *Inst) writeRef() (RegRef, bool) {
	switch in.Op {
	case OpMovI, OpMov, OpAdd, OpAddI, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShlI, OpShrI, OpLoad:
		return S(in.Rd), true
	case OpVMov, OpVAdd, OpVSub, OpVMul, OpVMulAdd, OpVAddI, OpVMulI, OpVAnd,
		OpVXor, OpVShrI, OpVAndI, OpVAddS, OpVMulS, OpVSplat, OpVIota,
		OpVIotaRev, OpVSel, OpVLoad, OpVGather, OpVBcast:
		return V(in.Rd), true
	case OpVCmpLT, OpVCmpGE, OpVCmpEQ, OpVCmpNE, OpPTrue, OpPFalse, OpPAnd,
		OpPOr, OpPNot, OpVConflict:
		return P(in.Rd), true
	}
	return RegRef{}, false
}

// Writes returns the registers the instruction writes.
func (in *Inst) Writes() []RegRef {
	if w, ok := in.writeRef(); ok {
		return []RegRef{w}
	}
	return nil
}

// String disassembles the instruction.
func (in *Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", in.Op)
	switch in.Op {
	case OpNop, OpHalt, OpPTrue, OpPFalse:
		if w, ok := in.writeRef(); ok {
			fmt.Fprintf(&b, " %v", w)
		}
	case OpSRVStart:
		fmt.Fprintf(&b, " %v", in.Dir)
	case OpSRVEnd:
	case OpMovI:
		fmt.Fprintf(&b, " s%d, #%d", in.Rd, in.Imm)
	case OpJmp:
		fmt.Fprintf(&b, " @%d", in.Tgt)
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		fmt.Fprintf(&b, " s%d, s%d, @%d", in.Rs1, in.Rs2, in.Tgt)
	case OpLoad:
		fmt.Fprintf(&b, " s%d, [s%d+%d].%d", in.Rd, in.Rs1, in.Imm, in.Elem)
	case OpStore:
		fmt.Fprintf(&b, " [s%d+%d].%d, s%d", in.Rs1, in.Imm, in.Elem, in.Rs2)
	case OpVLoad, OpVBcast:
		fmt.Fprintf(&b, " v%d, [s%d+%d].%d", in.Rd, in.Rs1, in.Imm, in.Elem)
	case OpVStore:
		fmt.Fprintf(&b, " [s%d+%d].%d, v%d", in.Rs1, in.Imm, in.Elem, in.Rs2)
	case OpVGather:
		fmt.Fprintf(&b, " v%d, [s%d+v%d*%d+%d]", in.Rd, in.Rs1, in.Rs2, in.Elem, in.Imm)
	case OpVScatter:
		fmt.Fprintf(&b, " [s%d+v%d*%d+%d], v%d", in.Rs1, in.Rs2, in.Elem, in.Imm, in.Rs3)
	default:
		if w, ok := in.writeRef(); ok {
			fmt.Fprintf(&b, " %v", w)
		}
		for _, s := range in.Reads() {
			fmt.Fprintf(&b, ", %v", s)
		}
	}
	if in.Pg != NoPred {
		fmt.Fprintf(&b, " ?p%d", in.Pg)
	}
	return b.String()
}

// Program is a resolved instruction sequence. Instruction index doubles as
// the program counter.
type Program struct {
	Insts  []Inst
	Labels map[string]int
}

// At returns the instruction at pc.
func (p *Program) At(pc int) *Inst { return &p.Insts[pc] }

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Insts) }

// String disassembles the whole program.
func (p *Program) String() string {
	rev := make(map[int][]string)
	for l, pc := range p.Labels {
		rev[pc] = append(rev[pc], l)
	}
	var b strings.Builder
	for pc := range p.Insts {
		for _, l := range rev[pc] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %3d: %v\n", pc, p.Insts[pc].String())
	}
	return b.String()
}
