// Package isa defines the SVE-like vector instruction set executed by the
// simulator: 16-lane element-agnostic vector registers, predicate registers
// that guard per-lane execution, contiguous / gather-scatter / broadcast
// vector memory accesses, and the two SRV instructions (srv_start, srv_end)
// that bracket a speculatively vectorised region (paper §III-A).
//
// The package also provides a program builder with label resolution and a
// simple sequential interpreter used as a functional golden model and as the
// dynamic-instruction-count emulator for the FlexVec comparison (paper §VI-D).
package isa

// Architectural geometry. The paper fixes the vector length to 16 elements,
// agnostic of the element size; the address-alignment region used by the LSU
// equals the vector width in bytes.
const (
	NumLanes   = 16 // SIMD lanes per vector register
	VecBytes   = 64 // vector register width in bytes (16 x 4-byte nominal)
	NumVecRegs = 32
	NumPredReg = 16
	NumSclRegs = 32
)

// Op identifies an instruction opcode.
type Op int

// Opcodes. Scalar ops operate on the scalar register file; V-prefixed ops on
// the vector file; P-prefixed on the predicate file.
const (
	OpNop Op = iota
	OpHalt

	// Scalar ALU.
	OpMovI // Rd <- Imm
	OpMov  // Rd <- Rs1
	OpAdd  // Rd <- Rs1 + Rs2
	OpAddI // Rd <- Rs1 + Imm
	OpSub  // Rd <- Rs1 - Rs2
	OpMul  // Rd <- Rs1 * Rs2
	OpAnd  // Rd <- Rs1 & Rs2
	OpOr   // Rd <- Rs1 | Rs2
	OpXor  // Rd <- Rs1 ^ Rs2
	OpShlI // Rd <- Rs1 << Imm
	OpShrI // Rd <- Rs1 >> Imm (logical)

	// Scalar memory. Address = Rs1 + Imm; Elem bytes.
	OpLoad  // Rd <- mem[Rs1+Imm]
	OpStore // mem[Rs1+Imm] <- Rs2

	// Control flow. Branches compare Rs1 against Rs2.
	OpJmp
	OpBEQ
	OpBNE
	OpBLT
	OpBGE

	// Vector ALU. Lanes where the governing predicate Pg is unset keep their
	// previous destination value (merging predication, paper §III-D5).
	OpVMov     // Vd <- Vs1
	OpVAdd     // Vd <- Vs1 + Vs2
	OpVSub     // Vd <- Vs1 - Vs2
	OpVMul     // Vd <- Vs1 * Vs2
	OpVMulAdd  // Vd <- Vs1*Vs2 + Vd (fused multiply-add)
	OpVAddI    // Vd <- Vs1 + Imm
	OpVMulI    // Vd <- Vs1 * Imm
	OpVAnd     // Vd <- Vs1 & Vs2
	OpVXor     // Vd <- Vs1 ^ Vs2
	OpVShrI    // Vd <- Vs1 >> Imm (logical)
	OpVAndI    // Vd <- Vs1 & Imm
	OpVAddS    // Vd <- Vs1 + scalar Rs2 (broadcast operand)
	OpVMulS    // Vd <- Vs1 * scalar Rs2
	OpVSplat   // Vd[i] <- scalar Rs1, all lanes
	OpVIota    // Vd[i] <- scalar Rs1 + i (lane index vector)
	OpVIotaRev // Vd[i] <- scalar Rs1 + (NumLanes-1-i) (descending-loop index vector)
	OpVSel     // Vd[i] <- Pg[i] ? Vs1[i] : Vs2[i]

	// Vector compare: writes predicate register Pd (field Rd).
	OpVCmpLT // Pd[i] <- Vs1[i] < Vs2[i]
	OpVCmpGE // Pd[i] <- Vs1[i] >= Vs2[i]
	OpVCmpEQ // Pd[i] <- Vs1[i] == Vs2[i]
	OpVCmpNE // Pd[i] <- Vs1[i] != Vs2[i]

	// Predicate manipulation.
	OpPTrue  // Pd <- all true
	OpPFalse // Pd <- all false
	OpPAnd   // Pd <- Ps1 & Ps2 (predicate regs in Rs1, Rs2)
	OpPOr    // Pd <- Ps1 | Ps2
	OpPNot   // Pd <- ^Ps1

	// Vector memory. Elem is the element size in bytes (1, 2, 4 or 8).
	OpVLoad    // Vd[i]  <- mem[Rs1 + Imm + i*Elem]                (contiguous)
	OpVStore   // mem[Rs1 + Imm + i*Elem] <- Vs2[i]                (contiguous)
	OpVGather  // Vd[i]  <- mem[Rs1 + Vs2[i]*Elem + Imm]           (gather)
	OpVScatter // mem[Rs1 + Vs2[i]*Elem + Imm] <- Vs3[i]           (scatter)
	OpVBcast   // Vd[i]  <- mem[Rs1 + Imm], all lanes              (broadcast)

	// FlexVec-style explicit conflict detection (paper §II / §VI-D): for
	// each lane i, Pd[i] is set when Vs1[i] equals Vs2[j] for some enabled
	// earlier lane j < i. The emulator charges one comparison micro-op per
	// (i, j) pair, reproducing how the paper broke VCONFLICTM apart.
	OpVConflict

	// SRV region control (paper §III-A).
	OpSRVStart // records restart PC, fully sets the SRV-replay register
	OpSRVEnd   // serialisation point; triggers selective replay if needed

	numOps
)

var opNames = map[Op]string{
	OpNop: "nop", OpHalt: "halt",
	OpMovI: "movi", OpMov: "mov", OpAdd: "add", OpAddI: "addi", OpSub: "sub",
	OpMul: "mul", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShlI: "shli",
	OpShrI: "shri", OpLoad: "load", OpStore: "store",
	OpJmp: "jmp", OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpVMov: "v_mov", OpVAdd: "v_add", OpVSub: "v_sub", OpVMul: "v_mul",
	OpVMulAdd: "v_mla", OpVAddI: "v_addi", OpVMulI: "v_muli", OpVAnd: "v_and",
	OpVXor: "v_xor", OpVShrI: "v_shri", OpVAndI: "v_andi",
	OpVAddS: "v_adds", OpVMulS: "v_muls", OpVSplat: "v_splat",
	OpVIota: "v_iota", OpVIotaRev: "v_iotar", OpVSel: "v_sel",
	OpVCmpLT: "v_cmplt", OpVCmpGE: "v_cmpge", OpVCmpEQ: "v_cmpeq",
	OpVCmpNE: "v_cmpne",
	OpPTrue:  "p_true", OpPFalse: "p_false", OpPAnd: "p_and", OpPOr: "p_or",
	OpPNot:  "p_not",
	OpVLoad: "v_load", OpVStore: "v_store", OpVGather: "v_gather",
	OpVScatter: "v_scatter", OpVBcast: "v_bcast", OpVConflict: "v_conflict",
	OpSRVStart: "srv_start", OpSRVEnd: "srv_end",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op?"
}

// Direction is the iteration-ordering attribute carried by srv_start
// (paper §III-A): UP when lane number increases with the accessed address
// (increasing induction variable), DOWN for the reverse.
type Direction int

const (
	DirUp Direction = iota
	DirDown
)

func (d Direction) String() string {
	if d == DirDown {
		return "DOWN"
	}
	return "UP"
}
