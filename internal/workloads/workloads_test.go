package workloads

import (
	"math/rand"
	"testing"

	"srvsim/internal/compiler"
	"srvsim/internal/isa"
	"srvsim/internal/mem"
)

func TestSuiteComposition(t *testing.T) {
	bs := All()
	if len(bs) != 16 {
		t.Fatalf("benchmarks = %d, want 16", len(bs))
	}
	spec, hpc := 0, 0
	for _, b := range bs {
		switch b.Suite {
		case "SPEC":
			spec++
		case "HPC":
			hpc++
		default:
			t.Errorf("%s: unknown suite %q", b.Name, b.Suite)
		}
		if b.Coverage <= 0 || b.Coverage > 0.30 {
			t.Errorf("%s: coverage %.3f outside (0, 0.30]", b.Name, b.Coverage)
		}
		if len(b.Loops) == 0 {
			t.Errorf("%s: no SRV loops", b.Name)
		}
		if len(b.Limit) == 0 {
			t.Errorf("%s: no limit-study population", b.Name)
		}
		w := 0.0
		for _, ls := range b.Loops {
			w += ls.Weight
		}
		if w < 0.99 || w > 1.01 {
			t.Errorf("%s: loop weights sum to %.3f, want 1.0", b.Name, w)
		}
	}
	if spec != 11 || hpc != 5 {
		t.Errorf("suites = %d SPEC / %d HPC, want 11 / 5 (paper §V)", spec, hpc)
	}
}

func TestEveryLoopIsSRVCandidate(t *testing.T) {
	// Every workload loop must be statically unknown (SRV's raison d'être):
	// SVE compilation is rejected, SRV succeeds.
	for _, b := range All() {
		for _, ls := range b.Loops {
			l, im := ls.Instantiate(1)
			if v := compiler.Analyse(l).Verdict; v != compiler.VerdictUnknown {
				t.Errorf("%s/%s: verdict %v, want unknown", b.Name, ls.Shape.Name, v)
			}
			if _, err := compiler.Compile(l, im, compiler.ModeSVE); err == nil {
				t.Errorf("%s/%s: SVE compilation must be rejected", b.Name, ls.Shape.Name)
			}
			if _, err := compiler.Compile(l, im, compiler.ModeSRV); err != nil {
				t.Errorf("%s/%s: SRV compilation failed: %v", b.Name, ls.Shape.Name, err)
			}
		}
	}
}

func TestSeedPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, pat := range []Pattern{PatIdentity, PatDisjoint, PatPeriodic4, PatRare, PatSmallRange, PatSpreadHigh} {
		s := Shape{Name: "p", Trip: 64, Pattern: pat, ReadSelf: true, StoreVia: true, Range: 256}
		l := s.Build()
		im := mem.NewImage()
		s.Seed(l, im, rng)
		var x *compiler.Array
		for _, a := range l.Arrays() {
			if a.Name == "x" {
				x = a
			}
		}
		if x == nil {
			t.Fatalf("%v: no index array", pat)
		}
		for i := 0; i < 64; i++ {
			v := im.ReadInt(x.Addr(int64(i)), 4)
			if v < 0 || v >= 256 {
				t.Errorf("pattern %v: x[%d] = %d outside [0, 256)", pat, i, v)
			}
			switch pat {
			case PatIdentity:
				if v != int64(i) {
					t.Errorf("identity x[%d] = %d", i, v)
				}
			case PatDisjoint:
				if v != int64(i-i%4) {
					t.Errorf("disjoint x[%d] = %d, want %d", i, v, i-i%4)
				}
			case PatPeriodic4:
				want := int64(i - 1)
				if i%4 == 0 {
					want = int64(i + 3)
				}
				if v != want {
					t.Errorf("periodic4 x[%d] = %d, want %d", i, v, want)
				}
			case PatSpreadHigh:
				if v < 64 {
					t.Errorf("spread-high x[%d] = %d, must stay above the read region", i, v)
				}
			}
		}
	}
}

func TestShapeAccessCounts(t *testing.T) {
	// The Fig 10 knobs: srvLoop shapes must have total accesses = contig +
	// 2*gathers + 3 (a[i] read, x[i] read, scatter) plus the guard load.
	s := Shape{Name: "c", Trip: 64, Contig: 2, Gathers: 1, ReadSelf: true, StoreVia: true}
	total, gs := s.Build().MemAccessCount()
	if total != 2+2+3 || gs != 2 {
		t.Errorf("accesses = %d/%d, want 7 total / 2 gather-scatter", total, gs)
	}
	s.Guarded = true
	total, _ = s.Build().MemAccessCount()
	if total != 8 {
		t.Errorf("guarded accesses = %d, want 8", total)
	}
}

func TestGatherStmtShape(t *testing.T) {
	s := Shape{Name: "g", Trip: 64, Gathers: 2, GatherStmt: true}
	l := s.Build()
	if len(l.Body) != 2 {
		t.Fatalf("statements = %d, want 2", len(l.Body))
	}
	total, gs := l.MemAccessCount()
	// stmt0: b load, x load, scatter; stmt1: 2x (gx load + gather), d store.
	if total != 3+5 || gs != 3 {
		t.Errorf("accesses = %d/%d, want 8 total / 3 gather-scatter", total, gs)
	}
	// LSU budget: 3 gather/scatter * 16 + 5 contiguous = 53 entries < 64, so
	// gather-bound loops never overflow (paper Fig 10's 55-entry argument).
	if entries := gs*isa.NumLanes + (total - gs); entries > 64 {
		t.Errorf("gather-bound shape needs %d LSU entries, exceeding 64", entries)
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	b, _ := ByName("is")
	l1, im1 := b.Loops[0].Instantiate(5)
	_, im2 := b.Loops[0].Instantiate(5)
	if !im1.Equal(im2) {
		t.Error("same seed must produce identical images")
	}
	compiler.Eval(l1, im1)
	if im1.Equal(im2) {
		t.Error("evaluation must change memory")
	}
}

func TestAllLoopsFitLSUOrFallBackDeliberately(t *testing.T) {
	for _, b := range All() {
		for _, ls := range b.Loops {
			total, gs := ls.Shape.Build().MemAccessCount()
			entries := gs*isa.NumLanes + (total - gs)
			if entries > 64 {
				t.Errorf("%s/%s needs %d LSU entries (> 64): would always fall back",
					b.Name, ls.Shape.Name, entries)
			}
		}
	}
}
