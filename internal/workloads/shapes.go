// Package workloads defines the benchmark suite of the paper's §V as
// synthetic kernels: one entry per SPEC CPU2006 / NPB / Livermore / SSCA2 /
// HPCC / Rodinia application evaluated, each with SRV-vectorisable loops
// whose shape (memory accesses, gather fraction, arithmetic chain, guards),
// runtime conflict pattern, trip counts and dynamic-instruction coverage are
// calibrated to what the paper reports per benchmark (Figs 6-13). SPEC
// binaries and reference inputs are licensed and gem5 checkpoints are
// unavailable, so the suite reproduces the published per-benchmark loop
// statistics rather than the applications themselves (see DESIGN.md §2).
package workloads

import (
	"fmt"
	"math/rand"

	"srvsim/internal/compiler"
	"srvsim/internal/mem"
)

// Pattern describes the runtime behaviour of the conflict-bearing index
// array of a kernel.
type Pattern int

const (
	// PatIdentity: x[i] = i — statically unknown, never conflicts.
	PatIdentity Pattern = iota
	// PatDisjoint: x[i] = i - i%4 — every lane writes the 4-aligned slot at
	// or below its own index: no RAW (stores never hit later lanes' reads),
	// but WAW between the four lanes of each block and WAR against earlier
	// reads — exercising the immediate resolution paths.
	PatDisjoint
	// PatPeriodic4: the paper's listing-1 pattern {3,0,1,2, 7,4,5,6, ...} —
	// one RAW violation every four iterations (lanes 3,7,11,15 replay).
	PatPeriodic4
	// PatRare: random indices over a large range — conflicts within a
	// 16-iteration window are rare but occur.
	PatRare
	// PatSmallRange: random indices over a small range — frequent duplicate
	// targets (histogram-style RAW).
	PatSmallRange
	// PatSpreadHigh: a conflict-free spread over the upper half of a large
	// array — stores never touch the region the loop reads, so no runtime
	// violations occur, but the footprint defeats the L1 (statically the
	// loop remains unknown-dependence).
	PatSpreadHigh
)

// Shape parameterises one synthetic kernel.
type Shape struct {
	Name     string
	Trip     int
	Elem     int
	FP       bool
	Contig   int     // extra contiguous source arrays in the value expression
	Gathers  int     // extra (conflict-free) gather sources
	Chain    int     // extra arithmetic depth on the value
	Guarded  bool    // if-converted statement guard
	Pattern  Pattern // conflict pattern for the main index array
	ReadSelf bool    // value reads a[i] (makes RAW possible, listing 1)
	StoreVia bool    // store through the index array (scatter); else contiguous store
	Range    int     // index range for PatRare/PatSmallRange (defaults to Trip)
	Stmts    int     // number of statements (>=1), each a variant of the kernel
	// GatherStmt separates the kernel into a cheap scatter statement and a
	// gather-dominated contiguous-store statement — the paper's omnetpp /
	// soplex / xalancbmk profile, where "one operation requires multiple
	// gather instructions to prepare data": the vector code is gather
	// port-bound while the scalar code pipelines freely.
	GatherStmt bool
}

// Build materialises the loop IR for the shape.
func (s Shape) Build() *compiler.Loop {
	elem := s.Elem
	if elem == 0 {
		elem = 4
	}
	rng := s.Range
	if rng == 0 {
		rng = s.Trip
	}
	arrLen := s.Trip
	if rng > arrLen {
		arrLen = rng
	}
	a := &compiler.Array{Name: "a", Elem: elem, Len: arrLen + 32}
	x := &compiler.Array{Name: "x", Elem: 4, Len: s.Trip + 32}
	stmts := s.Stmts
	if stmts == 0 {
		stmts = 1
	}
	l := &compiler.Loop{Name: s.Name, Trip: s.Trip, FP: s.FP}
	if s.GatherStmt {
		// Statement 0: a[x[i]] = b[i] + 1 (cheap value, keeps the loop an
		// SRV candidate). Statement 1: d[i] = sum of gathers.
		b := &compiler.Array{Name: "b0_0", Elem: elem, Len: s.Trip + 32}
		l.Body = append(l.Body, compiler.Stmt{
			Dst: a, Idx: compiler.Via(x, 1, 0),
			Val: compiler.Bin{Op: compiler.OpAdd,
				L: compiler.Ref{Arr: b, Idx: compiler.Affine(1, 0)},
				R: compiler.Const{V: 1}},
		})
		var val compiler.Expr = compiler.Const{V: 5}
		for gI := 0; gI < s.Gathers; gI++ {
			gt := &compiler.Array{Name: fmt.Sprintf("g0_%d", gI), Elem: elem, Len: arrLen + 32}
			gx := &compiler.Array{Name: fmt.Sprintf("gx0_%d", gI), Elem: 4, Len: s.Trip + 32}
			val = compiler.Bin{Op: compiler.OpAdd, L: val, R: compiler.Ref{Arr: gt, Idx: compiler.Via(gx, 1, 0)}}
		}
		d := &compiler.Array{Name: "d0", Elem: elem, Len: s.Trip + 32}
		l.Body = append(l.Body, compiler.Stmt{Dst: d, Idx: compiler.Affine(1, 0), Val: val})
		return l
	}
	for st := 0; st < stmts; st++ {
		var val compiler.Expr
		if s.ReadSelf {
			val = compiler.Ref{Arr: a, Idx: compiler.Affine(1, int64(st))}
		} else {
			val = compiler.Const{V: int64(7 + st)}
		}
		for c := 0; c < s.Contig; c++ {
			b := &compiler.Array{Name: fmt.Sprintf("b%d_%d", st, c), Elem: elem, Len: s.Trip + 32}
			val = compiler.Bin{Op: compiler.OpAdd, L: val, R: compiler.Ref{Arr: b, Idx: compiler.Affine(1, 0)}}
		}
		for gI := 0; gI < s.Gathers; gI++ {
			gt := &compiler.Array{Name: fmt.Sprintf("g%d_%d", st, gI), Elem: elem, Len: arrLen + 32}
			gx := &compiler.Array{Name: fmt.Sprintf("gx%d_%d", st, gI), Elem: 4, Len: s.Trip + 32}
			val = compiler.Bin{Op: compiler.OpAdd, L: val, R: compiler.Ref{Arr: gt, Idx: compiler.Via(gx, 1, 0)}}
		}
		for ch := 0; ch < s.Chain; ch++ {
			op := compiler.OpAdd
			if ch%3 == 1 {
				op = compiler.OpMul
			} else if ch%3 == 2 {
				op = compiler.OpXor
			}
			val = compiler.Bin{Op: op, L: val, R: compiler.Const{V: int64(3 + ch)}}
		}
		stmt := compiler.Stmt{Val: val}
		if s.StoreVia {
			stmt.Dst, stmt.Idx = a, compiler.Via(x, 1, 0)
		} else {
			d := &compiler.Array{Name: fmt.Sprintf("d%d", st), Elem: elem, Len: s.Trip + 32}
			stmt.Dst, stmt.Idx = d, compiler.Affine(1, 0)
			if st == 0 && !s.ReadSelf {
				// Keep the loop statically unknown even with a contiguous
				// store by reading through the index array.
				stmt.Val = compiler.Bin{Op: compiler.OpAdd, L: stmt.Val,
					R: compiler.Ref{Arr: a, Idx: compiler.Via(x, 1, 0)}}
			}
		}
		if s.Guarded {
			m := &compiler.Array{Name: fmt.Sprintf("m%d", st), Elem: 4, Len: s.Trip + 32}
			stmt.Mask = &compiler.Mask{Op: compiler.CmpLT,
				L: compiler.Ref{Arr: m, Idx: compiler.Affine(1, 0)},
				R: compiler.Const{V: 30}}
		}
		l.Body = append(l.Body, stmt)
	}
	return l
}

// Seed fills the kernel's arrays: the main index array per the conflict
// pattern, everything else with deterministic pseudo-random data.
func (s Shape) Seed(l *compiler.Loop, im *mem.Image, rng *rand.Rand) {
	idxRange := s.Range
	if idxRange == 0 {
		idxRange = s.Trip
	}
	for _, arr := range l.Bind(im) {
		switch {
		case arr.Name == "x":
			seedPattern(arr, im, s.Pattern, s.Trip, idxRange, rng)
		case len(arr.Name) > 1 && arr.Name[0] == 'g' && arr.Name[1] == 'x':
			// Conflict-free gather indices: a random permutation-free spread.
			for i := 0; i < arr.Len; i++ {
				im.WriteInt(arr.Addr(int64(i)), arr.Elem, int64(rng.Intn(idxRange)))
			}
		case arr.Name[0] == 'm':
			// Guard data: ~94% pass rate (predictable branches in the
			// scalar code, sparse inactive lanes in the vector code).
			for i := 0; i < arr.Len; i++ {
				im.WriteInt(arr.Addr(int64(i)), arr.Elem, int64(rng.Intn(32)))
			}
		default:
			for i := 0; i < arr.Len; i++ {
				im.WriteInt(arr.Addr(int64(i)), arr.Elem, int64(rng.Intn(64)))
			}
		}
	}
}

func seedPattern(x *compiler.Array, im *mem.Image, p Pattern, trip, idxRange int, rng *rand.Rand) {
	for i := 0; i < x.Len; i++ {
		var v int64
		switch p {
		case PatIdentity:
			v = int64(i)
		case PatDisjoint:
			v = int64(i - i%4)
		case PatPeriodic4:
			if i%4 == 0 {
				v = int64(i + 3)
			} else {
				v = int64(i - 1)
			}
			if v >= int64(idxRange) {
				v = int64(i % idxRange)
			}
		case PatRare:
			v = int64(rng.Intn(idxRange))
		case PatSmallRange:
			v = int64(rng.Intn(maxInt(idxRange/8, 8)))
		case PatSpreadHigh:
			span := idxRange - trip
			if span <= 0 {
				span = trip
			}
			v = int64(trip + int(uint32(i)*2654435761)%span)
		}
		im.WriteInt(x.Addr(int64(i)), x.Elem, v)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
