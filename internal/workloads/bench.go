package workloads

import (
	"math/rand"

	"srvsim/internal/compiler"
	"srvsim/internal/mem"
)

// LoopSpec is one SRV-vectorisable loop of a benchmark.
type LoopSpec struct {
	Shape    Shape
	Weight   float64 // share of the benchmark's dynamic instructions
	PredTail bool    // vectorise the remainder as a predicated tail group
}

// Instantiate builds the loop and seeds its data.
func (ls LoopSpec) Instantiate(seed int64) (*compiler.Loop, *mem.Image) {
	l := ls.Shape.Build()
	l.PredTail = ls.PredTail
	im := mem.NewImage()
	ls.Shape.Seed(l, im, rand.New(rand.NewSource(seed)))
	return l, im
}

// LimitLoop is an inner loop used only by the §II limit study: loops whose
// vectorisation is blocked by more than unknown dependences (function calls,
// inner control flow) are marked OtherBlocker — SRV alone cannot vectorise
// them, but the limit study may.
type LimitLoop struct {
	Shape        Shape
	Weight       float64
	Safe         bool // provably safe (already vectorised by SVE)
	OtherBlocker bool
}

// Benchmark is one application of the paper's evaluation.
type Benchmark struct {
	Name  string
	Suite string // "SPEC" or "HPC"
	FP    bool
	// Loops SRV can vectorise (unknown deps are the sole blocker).
	Loops []LoopSpec
	// Coverage: fraction of whole-program dynamic instructions inside the
	// SRV-vectorisable loops (Fig 6, bottom).
	Coverage float64
	// Limit-study inner-loop population (§II), including loops SRV cannot
	// reach.
	Limit []LimitLoop
}

// srvLoop is shorthand for a conflict-bearing indirect-update kernel.
func srvLoop(name string, trip, contig, gathers, chain int, pat Pattern, fp, guarded bool, rng int, w float64) LoopSpec {
	return LoopSpec{
		Shape: Shape{
			Name: name, Trip: trip, Contig: contig, Gathers: gathers,
			Chain: chain, Pattern: pat, FP: fp, Guarded: guarded,
			ReadSelf: true, StoreVia: true, Range: rng,
		},
		Weight: w,
	}
}

// gatherBound builds the paper's low-speedup profile (omnetpp, soplex,
// xalancbmk, milc): a cheap scatter statement plus a gather-dominated
// statement, leaving the vector code load-port bound.
func gatherBound(name string, trip, gathers int, fp bool, w float64) LoopSpec {
	return LoopSpec{
		Shape: Shape{
			Name: name, Trip: trip, Gathers: gathers, FP: fp,
			Pattern: PatIdentity, GatherStmt: true,
		},
		Weight: w,
	}
}

// big builds a many-statement kernel (Fig 10's >16-access tail).
func big(name string, trip, stmts, contig, gathers int, pat Pattern, w float64) LoopSpec {
	return LoopSpec{
		Shape: Shape{
			Name: name, Trip: trip, Contig: contig, Gathers: gathers,
			Stmts: stmts, Pattern: pat, ReadSelf: true, StoreVia: true,
		},
		Weight: w,
	}
}

// limitPop builds a generic limit-study population for a benchmark:
// innerCov of the program is inner loops; safeCov of that is provably safe;
// the rest is unknown-dependence loops (of which SRV reaches only the
// benchmark's Loops). The paper: >70% of unvectorised inner loops have
// unknown through-memory dependences.
func limitPop(name string, innerCov, safeCov float64) []LimitLoop {
	unknown := innerCov - safeCov
	return []LimitLoop{
		{Shape: Shape{Name: name + ".safe", Trip: 2048, Contig: 2, Chain: 1,
			Pattern: PatIdentity}, Weight: safeCov, Safe: true},
		{Shape: Shape{Name: name + ".unk1", Trip: 2048, Contig: 1, Chain: 1,
			Pattern: PatIdentity, ReadSelf: true, StoreVia: true}, Weight: unknown * 0.5},
		{Shape: Shape{Name: name + ".unk2", Trip: 2048, Contig: 2,
			Pattern: PatDisjoint, ReadSelf: true, StoreVia: true}, Weight: unknown * 0.3,
			OtherBlocker: true},
		{Shape: Shape{Name: name + ".dep", Trip: 2048, Contig: 1,
			Pattern: PatRare, Range: 64, ReadSelf: true, StoreVia: true}, Weight: unknown * 0.2,
			OtherBlocker: true},
	}
}

// All returns the sixteen benchmarks of the evaluation: eleven C/C++ SPEC
// CPU2006 applications and five HPC/scientific kernels (NPB is, Livermore,
// SSCA2, HPCC RandomAccess, Rodinia lc), with shapes calibrated to the
// paper's published per-benchmark statistics.
func All() []Benchmark {
	return []Benchmark{
		// ---- SPEC CPU2006 (general-purpose) ----
		{
			Name: "perlbench", Suite: "SPEC",
			// Small string/hash bodies with short trip counts: high barrier
			// fraction, middling speedup.
			Loops: []LoopSpec{
				srvLoop("perl.hashfix", 512, 2, 0, 2, PatIdentity, false, false, 0, 0.7),
				srvLoop("perl.strmap", 512, 2, 0, 2, PatDisjoint, false, false, 0, 0.3),
			},
			Coverage: 0.020,
			Limit:    limitPop("perlbench", 0.50, 0.02),
		},
		{
			Name: "bzip2", Suite: "SPEC",
			// Move-to-front / sorting pointer updates: decent compute chain,
			// rare real conflicts (Fig 9: a handful of RAW violations).
			Loops: []LoopSpec{
				srvLoop("bzip2.mtf", 8192, 8, 0, 6, PatRare, false, false, 1<<15, 0.9),
				srvLoop("bzip2.sort", 2048, 3, 0, 4, PatDisjoint, false, false, 0, 0.1),
			},
			Coverage: 0.030,
			Limit:    limitPop("bzip2", 0.55, 0.02),
		},
		{
			Name: "gcc", Suite: "SPEC",
			Loops: []LoopSpec{
				srvLoop("gcc.bitmap", 8192, 8, 0, 6, PatSpreadHigh, false, false, 1<<15, 0.8),
				srvLoop("gcc.alias", 2048, 3, 0, 4, PatDisjoint, false, false, 0, 0.2),
			},
			Coverage: 0.040,
			Limit:    limitPop("gcc", 0.45, 0.02),
		},
		{
			Name: "gobmk", Suite: "SPEC",
			// Board-scan loops with data-dependent guards (if-converted).
			Loops: []LoopSpec{
				srvLoop("gobmk.board", 1024, 2, 0, 3, PatIdentity, false, true, 0, 0.85),
				srvLoop("gobmk.capture", 512, 2, 0, 2, PatDisjoint, false, true, 0, 0.15),
			},
			Coverage: 0.020,
			Limit:    limitPop("gobmk", 0.40, 0.02),
		},
		{
			Name: "hmmer", Suite: "SPEC",
			// Viterbi-like bands: small bodies, short trips -> barrier-heavy.
			Loops: []LoopSpec{
				srvLoop("hmmer.band", 1024, 6, 0, 6, PatSpreadHigh, false, false, 1<<15, 0.8),
				srvLoop("hmmer.msv", 512, 3, 0, 3, PatIdentity, false, false, 0, 0.2),
			},
			Coverage: 0.045,
			Limit:    limitPop("hmmer", 0.60, 0.03),
		},
		{
			Name: "h264ref", Suite: "SPEC",
			Loops: []LoopSpec{
				srvLoop("h264.mc", 256, 2, 0, 3, PatDisjoint, false, false, 0, 0.6),
				srvLoop("h264.sad", 256, 3, 0, 3, PatIdentity, false, false, 0, 0.4),
			},
			Coverage: 0.030,
			Limit:    limitPop("h264ref", 0.50, 0.03),
		},
		{
			Name: "omnetpp", Suite: "SPEC",
			// Event-queue pointer chasing: several gathers feed one store —
			// the paper's "high memory-to-computation ratio" low-speedup case.
			Loops: []LoopSpec{
				gatherBound("omnetpp.evq", 4096, 2, false, 0.8),
				gatherBound("omnetpp.sched", 2048, 1, false, 0.2),
			},
			Coverage: 0.015,
			Limit:    limitPop("omnetpp", 0.35, 0.01),
		},
		{
			Name: "astar", Suite: "SPEC",
			// Open-list updates with guards; sizeable coverage (12.7%).
			Loops: []LoopSpec{
				srvLoop("astar.open", 4096, 2, 1, 2, PatIdentity, false, true, 0, 0.7),
				srvLoop("astar.relax", 2048, 2, 1, 1, PatDisjoint, false, false, 0, 0.3),
			},
			Coverage: 0.127,
			Limit:    limitPop("astar", 0.45, 0.02),
		},
		{
			Name: "soplex", Suite: "SPEC", FP: true,
			// Sparse LP pivots: FP gathers dominate — lowest loop speedup.
			Loops: []LoopSpec{
				gatherBound("soplex.pivot", 4096, 2, true, 0.75),
				gatherBound("soplex.price", 2048, 2, true, 0.25),
			},
			Coverage: 0.020,
			Limit:    limitPop("soplex", 0.55, 0.05),
		},
		{
			Name: "xalancbmk", Suite: "SPEC",
			// DOM traversal: gather-heavy with small bodies, high coverage.
			Loops: []LoopSpec{
				gatherBound("xalan.dom", 4096, 2, false, 0.7),
				srvLoop("xalan.attr", 2048, 1, 1, 0, PatDisjoint, false, false, 0, 0.3),
			},
			Coverage: 0.208,
			Limit:    limitPop("xalancbmk", 0.45, 0.02),
		},
		{
			Name: "milc", Suite: "SPEC", FP: true,
			// Lattice-QCD site updates: FP with indirection, big coverage.
			Loops: []LoopSpec{
				gatherBound("milc.site", 8192, 2, true, 0.8),
				gatherBound("milc.stout", 4096, 2, true, 0.2),
			},
			Coverage: 0.257,
			Limit:    limitPop("milc", 0.65, 0.05),
		},

		// ---- HPC / scientific ----
		{
			Name: "is", Suite: "HPC",
			// NPB integer sort key ranking: "all but one operation
			// vectorisable using existing techniques" — contiguous-dominated
			// body with one scatter; rare key duplicates cause RAW (Fig 9).
			Loops: []LoopSpec{
				srvLoop("is.rank", 8192, 8, 0, 8, PatRare, false, false, 1<<15, 0.95),
				srvLoop("is.perm", 4096, 3, 0, 3, PatDisjoint, false, false, 0, 0.05),
			},
			Coverage: 0.253,
			Limit:    limitPop("is", 0.70, 0.05),
		},
		{
			Name: "livermore", Suite: "HPC", FP: true,
			// Livermore kernels with potential pointer aliasing that never
			// materialises at run time.
			Loops: []LoopSpec{
				srvLoop("liv.k2", 8192, 8, 0, 4, PatSpreadHigh, true, false, 1<<15, 0.6),
				srvLoop("liv.k13", 8192, 5, 0, 4, PatSpreadHigh, true, false, 1<<15, 0.4),
			},
			Coverage: 0.050,
			Limit:    limitPop("livermore", 0.75, 0.10),
		},
		{
			Name: "ssca2", Suite: "HPC",
			// Graph kernel: edge-list indirection with occasional collisions.
			Loops: []LoopSpec{
				srvLoop("ssca2.edges", 4096, 2, 1, 2, PatRare, false, false, 1<<15, 0.6),
				gatherBound("ssca2.visit", 2048, 1, false, 0.4),
			},
			Coverage: 0.080,
			Limit:    limitPop("ssca2", 0.50, 0.03),
		},
		{
			Name: "randacc", Suite: "HPC",
			// HPCC RandomAccess: t[r&mask] ^= r — random updates, rare
			// window collisions.
			Loops: []LoopSpec{
				srvLoop("randacc.upd", 8192, 2, 0, 3, PatRare, false, false, 1<<14, 0.9),
				srvLoop("randacc.init", 2048, 2, 0, 1, PatIdentity, false, false, 0, 0.1),
			},
			Coverage: 0.173,
			Limit:    limitPop("randacc", 0.60, 0.02),
		},
		{
			Name: "lc", Suite: "HPC",
			// Rodinia-style grid relaxation through an indirection table;
			// includes one large multi-statement body (Fig 10's tail).
			Loops: []LoopSpec{
				srvLoop("lc.relax", 8192, 8, 0, 5, PatRare, false, false, 1<<15, 0.98),
				big("lc.bigbody", 2048, 2, 6, 0, PatIdentity, 0.02),
			},
			Coverage: 0.114,
			Limit:    limitPop("lc", 0.70, 0.05),
		},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
