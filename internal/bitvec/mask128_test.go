package bitvec

import (
	"math/rand"
	"testing"
)

// refMask128 builds a Mask128 bit by bit — the reference the word-parallel
// operations are checked against.
func refMask128(bits []bool) Mask128 {
	var m Mask128
	for i, b := range bits {
		if b {
			m[i>>6] |= 1 << uint(i&63)
		}
	}
	return m
}

func randBits(rng *rand.Rand) []bool {
	bits := make([]bool, FootprintBits)
	for i := range bits {
		bits[i] = rng.Intn(2) == 0
	}
	return bits
}

func TestRange128(t *testing.T) {
	for off := 0; off <= FootprintBits; off++ {
		for _, n := range []int{0, 1, 3, 8, 63, 64, 65, 127, 128} {
			if off+n > FootprintBits {
				continue
			}
			got := Range128(off, n)
			bits := make([]bool, FootprintBits)
			for i := off; i < off+n; i++ {
				bits[i] = true
			}
			if want := refMask128(bits); got != want {
				t.Fatalf("Range128(%d,%d) = %s, want %s", off, n, got, want)
			}
			if got.Count() != n {
				t.Fatalf("Range128(%d,%d).Count() = %d", off, n, got.Count())
			}
		}
	}
}

func TestMask128Window(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		bits := randBits(rng)
		m := refMask128(bits)
		off := rng.Intn(FootprintBits + 8)
		n := 1 + rng.Intn(64)
		got := m.Window(off, n)
		var want uint64
		for i := 0; i < n; i++ {
			if off+i < FootprintBits && bits[off+i] {
				want |= 1 << uint(i)
			}
		}
		if got != want {
			t.Fatalf("Window(%d,%d) = %#x, want %#x (mask %s)", off, n, got, want, m)
		}
	}
}

func TestMask128NextRun(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		bits := randBits(rng)
		if trial%7 == 0 { // exercise long runs too
			for i := range bits {
				bits[i] = i >= trial%64 && i < trial%64+65
			}
		}
		m := refMask128(bits)
		// Walk all runs and rebuild the mask.
		var rebuilt Mask128
		total := 0
		for off, n := m.NextRun(0); n > 0; off, n = m.NextRun(off + n) {
			if off+n > FootprintBits {
				t.Fatalf("run [%d,%d) out of range", off, off+n)
			}
			for i := off; i < off+n; i++ {
				if !bits[i] {
					t.Fatalf("run [%d,%d) covers clear bit %d", off, off+n, i)
				}
			}
			if off > 0 && bits[off-1] {
				t.Fatalf("run at %d not maximal (bit %d set)", off, off-1)
			}
			if off+n < FootprintBits && bits[off+n] {
				t.Fatalf("run [%d,%d) not maximal (bit %d set)", off, off+n, off+n)
			}
			rebuilt.SetRange(off, n)
			total += n
		}
		if rebuilt != m {
			t.Fatalf("runs do not cover mask: got %s want %s", rebuilt, m)
		}
		if total != m.Count() {
			t.Fatalf("run bytes %d != count %d", total, m.Count())
		}
	}
}

func TestMask128SetClearRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		bits := randBits(rng)
		m := refMask128(bits)
		off := rng.Intn(FootprintBits)
		n := rng.Intn(FootprintBits - off + 1)
		set, clear := m, m
		set.SetRange(off, n)
		clear.ClearRange(off, n)
		for i := 0; i < FootprintBits; i++ {
			inRange := i >= off && i < off+n
			if want := bits[i] || inRange; set.Test(i) != want {
				t.Fatalf("SetRange(%d,%d) bit %d = %v", off, n, i, set.Test(i))
			}
			if want := bits[i] && !inRange; clear.Test(i) != want {
				t.Fatalf("ClearRange(%d,%d) bit %d = %v", off, n, i, clear.Test(i))
			}
		}
	}
}

func TestLaneMask(t *testing.T) {
	if LaneRange(3, 2) != 0 {
		t.Error("empty LaneRange must be 0")
	}
	m := LaneRange(2, 5)
	if m.Count() != 4 || !m.Test(2) || !m.Test(5) || m.Test(1) || m.Test(6) {
		t.Errorf("LaneRange(2,5) = %b", m)
	}
	if m.Lowest() != 2 {
		t.Errorf("Lowest = %d", m.Lowest())
	}
	if LaneFrom(14, 16) != LaneRange(14, 15) {
		t.Error("LaneFrom(14,16) != LaneRange(14,15)")
	}
	if LaneFrom(16, 16).Any() {
		t.Error("LaneFrom past the end must be empty")
	}
}

// The disambiguation kernels must stay allocation-free: they run once per
// (issuing access, candidate entry) pair on the LSU hot path.

func BenchmarkMask128Window(b *testing.B) {
	b.ReportAllocs()
	m := Range128(5, 100)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += m.Window(i&63, 8)
	}
	_ = acc
}

func BenchmarkMask128NextRun(b *testing.B) {
	b.ReportAllocs()
	m := Range128(3, 20).Or(Range128(40, 33)).Or(Range128(100, 11))
	var acc int
	for i := 0; i < b.N; i++ {
		for off, n := m.NextRun(0); n > 0; off, n = m.NextRun(off + n) {
			acc += n
		}
	}
	_ = acc
}

func BenchmarkMask128RangeOps(b *testing.B) {
	b.ReportAllocs()
	var acc Mask128
	for i := 0; i < b.N; i++ {
		m := Range128(i&63, 64)
		acc = acc.Or(m.AndNot(Range128(8, 16)))
	}
	_ = acc
}
