package bitvec

import (
	"math/bits"
	"strings"
)

// Mask128 is a bit vector over one LSU-entry footprint, one bit per byte.
// The widest footprint is a contiguous vector access of 8-byte elements —
// 16 lanes x 8 bytes = 128 bits — so two words cover every entry. Bit i
// corresponds to byte i of the footprint (offset from Entry.Addr).
//
// These are the word-parallel kernels the LSU's disambiguation paths run
// on: validity tracking, forwarding-window extraction and the selective
// WAW write-back all reduce to AND/OR/AND-NOT over at most two uint64s
// instead of per-byte loops.
type Mask128 [2]uint64

// FootprintBits is the maximum footprint width a Mask128 covers.
const FootprintBits = 128

// Range128 returns a mask with bits [off, off+n) set.
func Range128(off, n int) Mask128 {
	if n <= 0 {
		return Mask128{}
	}
	var m Mask128
	end := off + n
	if off < 64 {
		hi := end
		if hi > 64 {
			hi = 64
		}
		m[0] = rangeWord(off, hi-off)
	}
	if end > 64 {
		lo := off - 64
		if lo < 0 {
			lo = 0
		}
		m[1] = rangeWord(lo, end-64-lo)
	}
	return m
}

// rangeWord returns a uint64 with bits [off, off+n) set; off+n <= 64.
func rangeWord(off, n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return ^uint64(0) << uint(off)
	}
	return (uint64(1)<<uint(n) - 1) << uint(off)
}

// Any reports whether any bit is set.
func (m Mask128) Any() bool { return m[0]|m[1] != 0 }

// Count returns the number of set bits.
func (m Mask128) Count() int {
	return bits.OnesCount64(m[0]) + bits.OnesCount64(m[1])
}

// Test reports whether bit off is set.
func (m Mask128) Test(off int) bool {
	return m[off>>6]&(1<<uint(off&63)) != 0
}

// And returns the intersection of two masks.
func (m Mask128) And(o Mask128) Mask128 { return Mask128{m[0] & o[0], m[1] & o[1]} }

// AndNot returns the bits of m not in o.
func (m Mask128) AndNot(o Mask128) Mask128 { return Mask128{m[0] &^ o[0], m[1] &^ o[1]} }

// Or returns the union of two masks.
func (m Mask128) Or(o Mask128) Mask128 { return Mask128{m[0] | o[0], m[1] | o[1]} }

// SetRange sets bits [off, off+n) in place.
func (m *Mask128) SetRange(off, n int) {
	r := Range128(off, n)
	m[0] |= r[0]
	m[1] |= r[1]
}

// ClearRange clears bits [off, off+n) in place.
func (m *Mask128) ClearRange(off, n int) {
	r := Range128(off, n)
	m[0] &^= r[0]
	m[1] &^= r[1]
}

// Window extracts bits [off, off+n) as the low n bits of a uint64 (n <= 64).
// This is the footprint-relative to load-window-relative shift the
// store-to-load forwarding path performs per candidate.
func (m Mask128) Window(off, n int) uint64 {
	var w uint64
	if off < 64 {
		w = m[0] >> uint(off)
		if off > 0 {
			w |= m[1] << uint(64-off)
		}
	} else {
		w = m[1] >> uint(off-64)
	}
	if n >= 64 {
		return w
	}
	return w & (uint64(1)<<uint(n) - 1)
}

// NextRun returns the first run of consecutive set bits at or after from,
// as (offset, length). A zero length means no bits remain. Write-back
// paths batch contiguous bytes into single memory operations this way.
func (m Mask128) NextRun(from int) (off, n int) {
	if from >= FootprintBits {
		return FootprintBits, 0
	}
	// Find the first set bit at or after from.
	w := from >> 6
	cur := m[w] >> uint(from&63) << uint(from&63)
	for cur == 0 {
		w++
		if w > 1 {
			return FootprintBits, 0
		}
		cur = m[w]
	}
	off = w<<6 + bits.TrailingZeros64(cur)
	// Extend the run word-parallel: count trailing ones from off.
	n = bits.TrailingZeros64(^m.Window(off, 64))
	if n == 64 {
		n += bits.TrailingZeros64(^m.Window(off+64, 64))
	}
	if off+n > FootprintBits {
		n = FootprintBits - off
	}
	return off, n
}

// String renders the mask LSB-first as a 0/1 string (tests and debugging).
func (m Mask128) String() string {
	var b strings.Builder
	for i := 0; i < FootprintBits; i++ {
		if m.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// LaneMask is a bit vector over vector lanes, one bit per lane, LSB =
// lane 0. The horizontal-disambiguation kernels compare whole lane sets
// with single AND/OR/shift operations instead of per-lane loops; up to 64
// lanes fit one word (the evaluated configuration uses 16).
type LaneMask uint64

// LaneRange returns a mask with lanes [lo, hi] set; empty when lo > hi.
func LaneRange(lo, hi int) LaneMask {
	if lo > hi {
		return 0
	}
	return LaneMask(rangeWord(lo, hi-lo+1))
}

// LaneFrom returns a mask with all lanes >= lo set, bounded by n lanes.
func LaneFrom(lo, n int) LaneMask { return LaneRange(lo, n-1) }

// Any reports whether any lane is set.
func (m LaneMask) Any() bool { return m != 0 }

// Count returns the number of set lanes.
func (m LaneMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Test reports whether lane l is set.
func (m LaneMask) Test(l int) bool { return m&(1<<uint(l)) != 0 }

// Lowest returns the lowest set lane, or 64 when empty.
func (m LaneMask) Lowest() int { return bits.TrailingZeros64(uint64(m)) }
