package bitvec

import (
	"testing"
	"testing/quick"
)

func TestBaseOffset(t *testing.T) {
	cases := []struct {
		addr uint64
		base uint64
		off  int
	}{
		{0x0, 0x0, 0},
		{0x3F, 0x0, 63},
		{0x40, 0x40, 0},
		{0xAB10, 0xAB00, 16},
		{0xFF0C, 0xFF00, 12},
	}
	for _, c := range cases {
		if got := Base(c.addr); got != c.base {
			t.Errorf("Base(%#x) = %#x, want %#x", c.addr, got, c.base)
		}
		if got := Offset(c.addr); got != c.off {
			t.Errorf("Offset(%#x) = %d, want %d", c.addr, got, c.off)
		}
	}
}

func TestRange(t *testing.T) {
	m := Range(16, 16)
	if m.Count() != 16 {
		t.Fatalf("count = %d, want 16", m.Count())
	}
	for i := 0; i < RegionSize; i++ {
		want := i >= 16 && i < 32
		if m.Test(i) != want {
			t.Errorf("bit %d = %v, want %v", i, m.Test(i), want)
		}
	}
	if got := Range(0, RegionSize).Count(); got != 64 {
		t.Errorf("full range count = %d, want 64", got)
	}
	if got := Range(5, 0); got != 0 {
		t.Errorf("empty range = %v, want 0", got)
	}
}

func TestRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(60, 8) should panic: crosses region boundary")
		}
	}()
	Range(60, 8)
}

func TestFromUpto(t *testing.T) {
	// Fig 4 of the paper: horizontal-violation vector "set from bit 24
	// onwards".
	m := From(24)
	if m.Count() != 40 {
		t.Fatalf("From(24) count = %d, want 40", m.Count())
	}
	if m.Test(23) || !m.Test(24) || !m.Test(63) {
		t.Errorf("From(24) has wrong boundary bits: %v", m)
	}
	if From(0) != ^Mask(0) {
		t.Error("From(0) should be all ones")
	}
	if From(RegionSize) != 0 {
		t.Error("From(RegionSize) should be empty")
	}
	if Upto(24) != ^From(24) {
		t.Error("Upto must complement From")
	}
}

func TestSetClearLowest(t *testing.T) {
	var m Mask
	m = m.Set(12).Set(15).Set(3)
	if m.Lowest() != 3 {
		t.Errorf("lowest = %d, want 3", m.Lowest())
	}
	m = m.Clear(3)
	if m.Lowest() != 12 {
		t.Errorf("lowest after clear = %d, want 12", m.Lowest())
	}
	if Mask(0).Lowest() != RegionSize {
		t.Errorf("empty lowest = %d, want %d", Mask(0).Lowest(), RegionSize)
	}
}

func TestSplitSpanSingleRegion(t *testing.T) {
	rms := SplitSpan(Span{Addr: 0xAB10, N: 16})
	if len(rms) != 1 {
		t.Fatalf("got %d regions, want 1", len(rms))
	}
	if rms[0].Base != 0xAB00 {
		t.Errorf("base = %#x, want 0xAB00", rms[0].Base)
	}
	if rms[0].Mask != Range(16, 16) {
		t.Errorf("mask = %v, want bytes 16..31", rms[0].Mask)
	}
}

func TestSplitSpanTwoRegions(t *testing.T) {
	// Paper example: 0x0C..0x4C spans two consecutive alignment regions.
	rms := SplitSpan(Span{Addr: 0x0C, N: 64})
	if len(rms) != 2 {
		t.Fatalf("got %d regions, want 2", len(rms))
	}
	if rms[0].Base != 0x0 || rms[0].Mask != Range(12, 52) {
		t.Errorf("first region wrong: base %#x mask %v", rms[0].Base, rms[0].Mask)
	}
	if rms[1].Base != 0x40 || rms[1].Mask != Range(0, 12) {
		t.Errorf("second region wrong: base %#x mask %v", rms[1].Base, rms[1].Mask)
	}
}

func TestSplitSpanEmpty(t *testing.T) {
	if got := SplitSpan(Span{Addr: 0x10, N: 0}); got != nil {
		t.Errorf("empty span should produce nil, got %v", got)
	}
}

func TestSplitSpanCoversAllBytes(t *testing.T) {
	// Property: the union of region masks covers exactly the span bytes.
	f := func(addr uint32, n uint8) bool {
		sp := Span{Addr: uint64(addr), N: int(n)}
		total := 0
		prevEnd := uint64(0)
		for i, rm := range SplitSpan(sp) {
			total += rm.Mask.Count()
			if i > 0 && rm.Base != prevEnd {
				return false // regions must be consecutive
			}
			prevEnd = rm.Base + RegionSize
		}
		return total == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetOverlap(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.AddSpan(Span{Addr: 0xAB10, N: 16}) // store A, bytes 16..31
	b.AddSpan(Span{Addr: 0xAB10, N: 16}) // load B, same bytes
	ov := Overlap(a, b)
	if len(ov) != 1 || ov[0].Mask != Range(16, 16) {
		t.Fatalf("VOB should be bytes 16..31, got %v", ov)
	}
	if !Overlaps(a, b) {
		t.Error("Overlaps should be true")
	}
	// Fig 4: load C at offset 24, store A at 16; VOB = bytes 24..31.
	c := NewSet()
	c.AddSpan(Span{Addr: 0xAB18, N: 16})
	ov = Overlap(a, c)
	if len(ov) != 1 || ov[0].Mask != Range(24, 8) {
		t.Fatalf("VOB should be bytes 24..31, got %v", ov)
	}
}

func TestSetDisjoint(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.AddSpan(Span{Addr: 0x100, N: 8})
	b.AddSpan(Span{Addr: 0x108, N: 8})
	if Overlaps(a, b) {
		t.Error("adjacent spans must not overlap")
	}
	if got := Overlap(a, b); got != nil {
		t.Errorf("Overlap = %v, want nil", got)
	}
}

func TestSetBytesAndContains(t *testing.T) {
	s := NewSet()
	s.AddSpan(Span{Addr: 0x3C, N: 8}) // crosses region boundary at 0x40
	if s.Bytes() != 8 {
		t.Errorf("bytes = %d, want 8", s.Bytes())
	}
	for a := uint64(0x3C); a < 0x44; a++ {
		if !s.Contains(a) {
			t.Errorf("should contain %#x", a)
		}
	}
	if s.Contains(0x3B) || s.Contains(0x44) {
		t.Error("contains bytes outside span")
	}
}

func TestSetEachByte(t *testing.T) {
	s := NewSet()
	s.AddSpan(Span{Addr: 0x10, N: 4})
	var got []uint64
	s.EachByte(func(a uint64) { got = append(got, a) })
	if len(got) != 4 {
		t.Fatalf("EachByte visited %d bytes, want 4", len(got))
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSet()
	s.AddSpan(Span{Addr: 0x10, N: 4})
	c := s.Clone()
	c.AddSpan(Span{Addr: 0x20, N: 4})
	if s.Bytes() != 4 || c.Bytes() != 8 {
		t.Errorf("clone not independent: s=%d c=%d", s.Bytes(), c.Bytes())
	}
	s.Reset()
	if !s.Empty() || c.Bytes() != 8 {
		t.Error("reset affected clone or did not empty set")
	}
}
