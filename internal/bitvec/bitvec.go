// Package bitvec implements the byte-granular bit vectors over
// address-alignment regions that the SRV load-store unit uses for memory
// disambiguation (paper §IV-A).
//
// An address-alignment region is the naturally aligned span of memory whose
// size equals the vector register width in bytes (64 bytes for the 16-lane,
// element-agnostic configuration evaluated in the paper). Every byte of a
// region maps to one bit of a Mask. The LSU computes, per queue entry, a
// bytes-accessed bit vector, and on each issue derives the vertically
// overlapped bytes (VOB), horizontal-violation and horizontally overlapped
// bytes (HOB) vectors from pairs of these masks.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// RegionSize is the size in bytes of one address-alignment region. It equals
// the vector width in bytes: 16 lanes x 4-byte nominal elements.
const RegionSize = 64

// Mask is a bit vector over one address-alignment region, one bit per byte.
// Bit i corresponds to the byte at offset i from the region's alignment base.
type Mask uint64

// Base returns the address-alignment base of addr: the start address of the
// region containing it.
func Base(addr uint64) uint64 { return addr &^ (RegionSize - 1) }

// Offset returns the offset of addr within its alignment region.
func Offset(addr uint64) int { return int(addr & (RegionSize - 1)) }

// Range returns a mask with bits [off, off+n) set. It panics if the span
// leaves the region; callers split accesses across regions first.
func Range(off, n int) Mask {
	if off < 0 || n < 0 || off+n > RegionSize {
		panic(fmt.Sprintf("bitvec: range [%d,%d) outside region", off, off+n))
	}
	if n == 0 {
		return 0
	}
	if n == RegionSize {
		return ^Mask(0) >> uint(off) << uint(off) // off must be 0 here
	}
	return ((Mask(1) << uint(n)) - 1) << uint(off)
}

// From returns a mask with all bits from off (inclusive) to the end of the
// region set. The paper's horizontal-violation vectors for contiguous
// accesses are built this way ("set from bit 24 onwards", Fig 4).
func From(off int) Mask {
	if off < 0 || off > RegionSize {
		panic(fmt.Sprintf("bitvec: from-offset %d outside region", off))
	}
	if off == RegionSize {
		return 0
	}
	return ^Mask(0) << uint(off)
}

// Upto returns a mask with all bits below off set.
func Upto(off int) Mask { return ^From(off) }

// Count returns the number of set bits.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Test reports whether the bit for byte offset off is set.
func (m Mask) Test(off int) bool { return m&(Mask(1)<<uint(off)) != 0 }

// Set returns m with the bit for byte offset off set.
func (m Mask) Set(off int) Mask { return m | Mask(1)<<uint(off) }

// Clear returns m with the bit for byte offset off cleared.
func (m Mask) Clear(off int) Mask { return m &^ (Mask(1) << uint(off)) }

// Lowest returns the offset of the lowest set bit, or RegionSize if empty.
func (m Mask) Lowest() int { return bits.TrailingZeros64(uint64(m)) }

// String renders the mask LSB-first as a 64-character 0/1 string, matching
// the byte-offset ordering used in the paper's figures.
func (m Mask) String() string {
	var b strings.Builder
	for i := 0; i < RegionSize; i++ {
		if m.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Span describes a contiguous byte span [Addr, Addr+N) of memory.
type Span struct {
	Addr uint64
	N    int
}

// RegionMask pairs an alignment base with the bytes-accessed mask for that
// region. Accesses spanning multiple regions produce one RegionMask each.
type RegionMask struct {
	Base uint64
	Mask Mask
}

// SplitSpan decomposes a byte span into per-region bytes-accessed masks, in
// ascending region order. A 64-byte contiguous vector access at a non-zero
// offset spans two consecutive regions (paper §IV-A, "the address space
// 0x0C-0x4C spans two consecutive alignment regions").
func SplitSpan(s Span) []RegionMask {
	if s.N <= 0 {
		return nil
	}
	var out []RegionMask
	addr := s.Addr
	remaining := s.N
	for remaining > 0 {
		base := Base(addr)
		off := Offset(addr)
		n := RegionSize - off
		if n > remaining {
			n = remaining
		}
		out = append(out, RegionMask{Base: base, Mask: Range(off, n)})
		addr += uint64(n)
		remaining -= n
	}
	return out
}

// Set is a collection of region masks keyed by alignment base. It accumulates
// the bytes accessed by one LSU entry (which may touch several regions) and
// supports the AND/OR operations the disambiguation logic performs.
type Set struct {
	regions map[uint64]Mask
}

// NewSet returns an empty region-mask set.
func NewSet() *Set { return &Set{regions: make(map[uint64]Mask)} }

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet()
	for b, m := range s.regions {
		c.regions[b] = m
	}
	return c
}

// Reset empties the set in place.
func (s *Set) Reset() {
	for b := range s.regions {
		delete(s.regions, b)
	}
}

// AddSpan marks the bytes of span as accessed.
func (s *Set) AddSpan(sp Span) {
	for _, rm := range SplitSpan(sp) {
		s.regions[rm.Base] |= rm.Mask
	}
}

// Add marks the bytes of a single region mask as accessed.
func (s *Set) Add(rm RegionMask) {
	if rm.Mask != 0 {
		s.regions[rm.Base] |= rm.Mask
	}
}

// Get returns the mask for the region with the given base.
func (s *Set) Get(base uint64) Mask { return s.regions[base] }

// Empty reports whether no bytes are marked.
func (s *Set) Empty() bool {
	for _, m := range s.regions {
		if m != 0 {
			return false
		}
	}
	return true
}

// Bytes returns the total number of marked bytes.
func (s *Set) Bytes() int {
	n := 0
	for _, m := range s.regions {
		n += m.Count()
	}
	return n
}

// Overlap computes the per-region AND of two sets: the vertically overlapped
// bytes (VOB) between an issuing access and a queue entry. Regions with a
// zero result are omitted.
func Overlap(a, b *Set) []RegionMask {
	var out []RegionMask
	for base, ma := range a.regions {
		if mb := b.regions[base]; ma&mb != 0 {
			out = append(out, RegionMask{Base: base, Mask: ma & mb})
		}
	}
	return out
}

// Overlaps reports whether any byte is marked in both sets.
func Overlaps(a, b *Set) bool {
	for base, ma := range a.regions {
		if ma&b.regions[base] != 0 {
			return true
		}
	}
	return false
}

// Each calls fn for every non-empty region mask in the set.
func (s *Set) Each(fn func(RegionMask)) {
	for base, m := range s.regions {
		if m != 0 {
			fn(RegionMask{Base: base, Mask: m})
		}
	}
}

// EachByte calls fn with the absolute address of every marked byte.
func (s *Set) EachByte(fn func(addr uint64)) {
	for base, m := range s.regions {
		for off := 0; off < RegionSize; off++ {
			if m.Test(off) {
				fn(base + uint64(off))
			}
		}
	}
}

// Contains reports whether the byte at addr is marked.
func (s *Set) Contains(addr uint64) bool {
	return s.regions[Base(addr)].Test(Offset(addr))
}

// MarkByte marks the single byte at addr.
func (s *Set) MarkByte(addr uint64) {
	s.regions[Base(addr)] = s.regions[Base(addr)].Set(Offset(addr))
}
