// Package power implements the McPAT-style dynamic power accounting of
// paper §VI-C. McPAT models out-of-order LSU power through CAM lookups: a
// load issue costs one store-buffer CAM (forwarding) plus one load-buffer
// CAM (ordering); a store issue one load-buffer CAM. SRV doubles the
// lookups inside a region and adds one extra store-buffer CAM per store for
// horizontal disambiguation — accounting the LSU (internal/lsu) already
// performs per issue. The LSU contributes about 11% of core run-time power,
// which is why the paper's Fig 12 deltas stay within a few percent.
package power

// Model converts CAM-lookup rates into a core power delta.
type Model struct {
	// LSUShare is the LSU's fraction of total core run-time power in the
	// baseline (the paper reports 11% on average).
	LSUShare float64
	// ShiftWeight optionally models the horizontal-disambiguation
	// bit-vector shifts McPAT could not capture (paper §VI-C: "the extra
	// bit-vector shifts incurred in horizontal disambiguation are not
	// modelled"): each horizontal disambiguation is charged this fraction
	// of a CAM lookup's energy. Zero reproduces the paper's model.
	ShiftWeight float64
}

// Default returns the paper's calibration.
func Default() Model { return Model{LSUShare: 0.11} }

// WithShifts returns the extended model that also charges the horizontal
// bit-vector shifts (an extension past the paper's McPAT granularity; a
// barrel shifter costs a small fraction of a CAM search).
func WithShifts() Model { return Model{LSUShare: 0.11, ShiftWeight: 0.05} }

// Sample is one run's activity.
type Sample struct {
	CAMLookups  int64
	HorizShifts int64 // horizontal disambiguations (bit-vector shifts)
	Cycles      int64
}

// Rate returns CAM lookups per cycle.
func (s Sample) Rate() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.CAMLookups) / float64(s.Cycles)
}

// rateWith folds the shift activity in at the given weight.
func (s Sample) rateWith(shiftWeight float64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return (float64(s.CAMLookups) + shiftWeight*float64(s.HorizShifts)) / float64(s.Cycles)
}

// DeltaPercent returns the run-time core power change of the SRV run
// relative to the baseline (unvectorised) run, in percent. The LSU's
// dynamic power scales with its CAM-lookup rate; the rest of the core is
// assumed activity-neutral between the two runs (the paper's methodology:
// only the LSU model changes).
func (m Model) DeltaPercent(srv, base Sample) float64 {
	br := base.rateWith(m.ShiftWeight)
	if br == 0 {
		return 0
	}
	return m.LSUShare * (srv.rateWith(m.ShiftWeight) - br) / br * 100
}

// Breakdown reports absolute power in arbitrary units where the baseline
// core consumes 1.0: the non-LSU share is constant, the LSU share scales
// with CAM-lookup rate.
type Breakdown struct {
	Core float64
	LSU  float64
}

// Power returns the modelled core power of a run given the baseline sample
// that anchors the LSU share.
func (m Model) Power(run, base Sample) Breakdown {
	br := base.rateWith(m.ShiftWeight)
	lsu := m.LSUShare
	if br > 0 {
		lsu = m.LSUShare * run.rateWith(m.ShiftWeight) / br
	}
	return Breakdown{Core: (1 - m.LSUShare) + lsu, LSU: lsu}
}
