package power

import (
	"math"
	"testing"
)

func TestDeltaPercent(t *testing.T) {
	m := Default()
	base := Sample{CAMLookups: 1000, Cycles: 10000} // 0.1 lookups/cycle
	// SRV run with 60% higher CAM rate: delta = 11% * 0.6 = 6.6%... but the
	// paper's worst case is 3.2% because vectorisation also cuts the
	// instruction (and lookup) count; the model itself is linear.
	srv := Sample{CAMLookups: 1600, Cycles: 10000}
	if d := m.DeltaPercent(srv, base); math.Abs(d-6.6) > 1e-9 {
		t.Errorf("delta = %.3f%%, want 6.6%%", d)
	}
	// Fewer lookups per cycle -> negative delta (bzip2/omnetpp/milc/
	// xalancbmk in Fig 12).
	srv = Sample{CAMLookups: 500, Cycles: 10000}
	if d := m.DeltaPercent(srv, base); d >= 0 {
		t.Errorf("delta = %.3f%%, want negative", d)
	}
	// Equal rates -> zero.
	if d := m.DeltaPercent(base, base); d != 0 {
		t.Errorf("delta = %.3f%%, want 0", d)
	}
}

func TestDeltaZeroBaseline(t *testing.T) {
	m := Default()
	if d := m.DeltaPercent(Sample{CAMLookups: 10, Cycles: 10}, Sample{}); d != 0 {
		t.Errorf("zero baseline must yield 0, got %f", d)
	}
}

func TestPowerBreakdown(t *testing.T) {
	m := Default()
	base := Sample{CAMLookups: 1000, Cycles: 10000}
	b := m.Power(base, base)
	if math.Abs(b.Core-1.0) > 1e-9 || math.Abs(b.LSU-0.11) > 1e-9 {
		t.Errorf("baseline breakdown = %+v, want core 1.0 / lsu 0.11", b)
	}
	double := Sample{CAMLookups: 2000, Cycles: 10000}
	b = m.Power(double, base)
	if math.Abs(b.Core-1.11) > 1e-9 {
		t.Errorf("doubled-rate core power = %.3f, want 1.11", b.Core)
	}
}

// TestWithShiftsChargesHorizontal: the extended model must charge SRV runs
// for their horizontal-disambiguation shifts while leaving the baseline
// (which performs none) unchanged — flipping small negative deltas positive
// exactly as Fig 12's extension discusses.
func TestWithShiftsChargesHorizontal(t *testing.T) {
	base := Sample{CAMLookups: 1000, Cycles: 1000}
	srv := Sample{CAMLookups: 990, HorizShifts: 800, Cycles: 1000}

	plain := Default().DeltaPercent(srv, base)
	if plain >= 0 {
		t.Fatalf("CAM-only delta must be negative here, got %.3f", plain)
	}
	ext := WithShifts().DeltaPercent(srv, base)
	if ext <= plain {
		t.Errorf("shift charging must raise the delta: %.3f -> %.3f", plain, ext)
	}
	if ext <= 0 {
		t.Errorf("800 shifts at weight 0.05 must flip the sign, got %.3f", ext)
	}
}

// TestRate covers the lookups-per-cycle accessor and its zero guard.
func TestRate(t *testing.T) {
	if r := (Sample{CAMLookups: 300, Cycles: 100}).Rate(); r != 3 {
		t.Errorf("rate = %v, want 3", r)
	}
	if r := (Sample{CAMLookups: 300}).Rate(); r != 0 {
		t.Errorf("zero-cycle rate = %v, want 0", r)
	}
}
