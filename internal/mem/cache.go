package mem

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name   string
	SizeB  int // total capacity in bytes
	Ways   int
	LineB  int // line size in bytes
	HitLat int // cycles on hit
}

// CacheStats aggregates per-level access counts.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Cache is a set-associative tag array with LRU replacement, used purely for
// timing: data lives in the Image, the cache only decides latency.
type Cache struct {
	cfg      CacheConfig
	sets     [][]line
	setMask  uint64
	lineBits uint
	lruTick  uint64 // per-cache so concurrent simulations share nothing
	Stats    CacheStats
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64 // last-use tick
}

// NewCache builds a cache from cfg. Sizes must be powers of two.
func NewCache(cfg CacheConfig) *Cache {
	nLines := cfg.SizeB / cfg.LineB
	nSets := nLines / cfg.Ways
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic("mem: cache set count must be a power of two")
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineB {
		lineBits++
	}
	c := &Cache{cfg: cfg, setMask: uint64(nSets - 1), lineBits: lineBits}
	c.sets = make([][]line, nSets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Lookup probes the cache for addr, fills on miss, and reports whether the
// access hit.
func (c *Cache) Lookup(addr uint64) bool {
	c.lruTick++
	tag := addr >> c.lineBits
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.lruTick
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.lruTick}
	return false
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Hierarchy is the two-level cache + memory latency model of Table I.
type Hierarchy struct {
	L1, L2 *Cache
	MemLat int // cycles for a access that misses both levels

	// MemBusy, when non-zero, models DRAM bandwidth: each memory access
	// occupies the channel for MemBusy cycles, and later accesses queue
	// behind it (single-channel approximation). Zero = unlimited bandwidth.
	MemBusy   int
	busyUntil int64
	// QueueDelay accumulates cycles spent waiting for the channel.
	QueueDelay int64

	// NextLinePrefetch, when set, pulls the next cache line into the
	// hierarchy on every L1 miss (a simple stream prefetcher; default off
	// to preserve the Table I calibration).
	NextLinePrefetch bool
	Prefetches       int64
}

// DefaultHierarchy returns the configuration evaluated in the paper:
// L1 32KiB 4-way 2-cycle hit, L2 1MiB 16-way 7-cycle hit.
func DefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		L1:     NewCache(CacheConfig{Name: "L1", SizeB: 32 << 10, Ways: 4, LineB: 64, HitLat: 2}),
		L2:     NewCache(CacheConfig{Name: "L2", SizeB: 1 << 20, Ways: 16, LineB: 64, HitLat: 7}),
		MemLat: 80,
	}
}

// Latency returns the access latency for addr and updates both levels'
// contents and statistics (bandwidth-unaware; see LatencyAt).
func (h *Hierarchy) Latency(addr uint64) int {
	return h.LatencyAt(0, addr)
}

// LatencyAt is Latency with DRAM-bandwidth modelling: when MemBusy is set,
// a memory access starting at cycle `now` queues behind earlier ones.
func (h *Hierarchy) LatencyAt(now int64, addr uint64) int {
	if h.L1.Lookup(addr) {
		return h.L1.cfg.HitLat
	}
	if h.NextLinePrefetch {
		// Fill the next line off the critical path.
		next := (addr &^ uint64(h.L1.cfg.LineB-1)) + uint64(h.L1.cfg.LineB)
		h.L1.Lookup(next)
		h.L2.Lookup(next)
		h.Prefetches++
	}
	if h.L2.Lookup(addr) {
		return h.L1.cfg.HitLat + h.L2.cfg.HitLat
	}
	lat := h.L1.cfg.HitLat + h.L2.cfg.HitLat + h.MemLat
	if h.MemBusy > 0 {
		start := now
		if h.busyUntil > start {
			h.QueueDelay += h.busyUntil - start
			lat += int(h.busyUntil - start)
			start = h.busyUntil
		}
		h.busyUntil = start + int64(h.MemBusy)
	}
	return lat
}

// SpanLatency returns the worst-case latency over the cache lines touched by
// the byte span [addr, addr+n).
func (h *Hierarchy) SpanLatency(addr uint64, n int) int {
	lineB := uint64(h.L1.cfg.LineB)
	worst := 0
	for line := addr &^ (lineB - 1); line < addr+uint64(n); line += lineB {
		if lat := h.Latency(line); lat > worst {
			worst = lat
		}
	}
	if worst == 0 {
		worst = h.L1.cfg.HitLat
	}
	return worst
}
