package mem

import "srvsim/internal/obsv"

// RegisterMetrics registers the hierarchy's per-level hit/miss counters into
// the given registry section. The prefetch counter renders only when the
// next-line prefetcher is enabled, matching the historical dump.
func (h *Hierarchy) RegisterMetrics(s obsv.Section) {
	s.Counter("l1.hits", "L1 hits", &h.L1.Stats.Hits)
	s.Counter("l1.misses", "L1 misses", &h.L1.Stats.Misses)
	s.Counter("l2.hits", "L2 hits", &h.L2.Stats.Hits)
	s.Counter("l2.misses", "L2 misses (memory accesses)", &h.L2.Stats.Misses)
	s.If(func() bool { return h.NextLinePrefetch }).
		Counter("l2.prefetches", "next-line prefetches issued", &h.Prefetches)
}
