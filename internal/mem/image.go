// Package mem provides the memory substrate for the simulator: a flat
// byte-addressable memory image with a bump allocator for laying out
// workload arrays, and a two-level set-associative cache timing model with
// the hit latencies of the paper's Table I (L1 32KiB 4-way 2-cycle,
// L2 1MiB 16-way 7-cycle).
package mem

import "fmt"

const pageBits = 12
const pageSize = 1 << pageBits

// Image is a sparse, byte-addressable memory image. Pages are allocated on
// first touch and zero-filled, so reads of untouched memory return zero.
type Image struct {
	pages map[uint64]*[pageSize]byte
	next  uint64 // bump allocation cursor
}

// NewImage returns an empty image. Allocation starts at a non-zero base so
// that address 0 stays invalid.
func NewImage() *Image {
	return &Image{pages: make(map[uint64]*[pageSize]byte), next: 0x1000}
}

// Alloc reserves n bytes aligned to align (which must be a power of two) and
// returns the base address. A guard gap is left between allocations so that
// out-of-bounds accesses land in distinct regions during debugging.
func (im *Image) Alloc(n int, align uint64) uint64 {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	base := (im.next + align - 1) &^ (align - 1)
	im.next = base + uint64(n) + 64 // guard gap
	return base
}

func (im *Image) page(addr uint64) *[pageSize]byte {
	pn := addr >> pageBits
	p := im.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		im.pages[pn] = p
	}
	return p
}

// ReadBytes copies len(p) bytes starting at addr into p.
func (im *Image) ReadBytes(addr uint64, p []byte) {
	for len(p) > 0 {
		pg := im.page(addr)
		off := int(addr & (pageSize - 1))
		n := copy(p, pg[off:])
		p = p[n:]
		addr += uint64(n)
	}
}

// WatchAddr and WatchFn are a debug hook: when WatchFn is non-nil, every
// write covering WatchAddr invokes it. Test-only instrumentation.
var (
	WatchAddr uint64
	WatchFn   func(addr uint64, val byte)
)

// WriteBytes copies p into memory starting at addr.
func (im *Image) WriteBytes(addr uint64, p []byte) {
	if WatchFn != nil && addr <= WatchAddr && WatchAddr < addr+uint64(len(p)) {
		WatchFn(addr, p[WatchAddr-addr])
	}
	for len(p) > 0 {
		pg := im.page(addr)
		off := int(addr & (pageSize - 1))
		n := copy(pg[off:], p)
		p = p[n:]
		addr += uint64(n)
	}
}

// ReadInt loads n little-endian bytes and sign-extends.
func (im *Image) ReadInt(addr uint64, n int) int64 {
	var buf [8]byte
	im.ReadBytes(addr, buf[:n])
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(buf[i]) << (8 * uint(i))
	}
	shift := uint(64 - 8*n)
	return int64(v<<shift) >> shift
}

// WriteInt stores the low n bytes of v little-endian.
func (im *Image) WriteInt(addr uint64, n int, v int64) {
	var buf [8]byte
	for i := 0; i < n; i++ {
		buf[i] = byte(uint64(v) >> (8 * uint(i)))
	}
	im.WriteBytes(addr, buf[:n])
}

// Clone returns a deep copy of the image, used to run the same initial state
// through several execution strategies.
func (im *Image) Clone() *Image {
	c := NewImage()
	c.next = im.next
	for pn, p := range im.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// Equal reports whether two images hold identical contents. Zero pages are
// treated as absent.
func (im *Image) Equal(o *Image) bool {
	return im.coveredBy(o) && o.coveredBy(im)
}

func isZero(p *[pageSize]byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

func (im *Image) coveredBy(o *Image) bool {
	for pn, p := range im.pages {
		q := o.pages[pn]
		if q == nil {
			if !isZero(p) {
				return false
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}

// FirstDiff returns the lowest address at which the images differ, for test
// diagnostics. The second result is false when the images are equal.
func (im *Image) FirstDiff(o *Image) (uint64, bool) {
	seen := make(map[uint64]bool)
	var lowest uint64
	found := false
	check := func(pn uint64) {
		if seen[pn] {
			return
		}
		seen[pn] = true
		a, b := im.pages[pn], o.pages[pn]
		var za, zb [pageSize]byte
		if a == nil {
			a = &za
		}
		if b == nil {
			b = &zb
		}
		for i := 0; i < pageSize; i++ {
			if a[i] != b[i] {
				addr := pn<<pageBits + uint64(i)
				if !found || addr < lowest {
					lowest, found = addr, true
				}
				return
			}
		}
	}
	for pn := range im.pages {
		check(pn)
	}
	for pn := range o.pages {
		check(pn)
	}
	return lowest, found
}
