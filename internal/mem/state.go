package mem

import (
	"fmt"
	"sort"
)

// Serialisable memory-substrate state for the pipeline checkpoint: the
// sparse image pages, both cache tag arrays with their LRU ticks, and the
// DRAM-channel busy horizon. Restoring over a live hierarchy replaces the
// contents wholesale, so a checkpoint taken after cache warming rolls the
// warm state forward exactly.

// PageState is one captured memory page. Data marshals as base64.
type PageState struct {
	PN   uint64 `json:"pn"`
	Data []byte `json:"data"`
}

// ImageState is the serialisable state of an Image.
type ImageState struct {
	Next  uint64      `json:"next"`
	Pages []PageState `json:"pages"` // sorted by page number
}

// State captures the image contents. Pages are copied and sorted so the
// serialised form is deterministic.
func (im *Image) State() ImageState {
	st := ImageState{Next: im.next, Pages: make([]PageState, 0, len(im.pages))}
	for pn, p := range im.pages {
		data := make([]byte, pageSize)
		copy(data, p[:])
		st.Pages = append(st.Pages, PageState{PN: pn, Data: data})
	}
	sort.Slice(st.Pages, func(i, j int) bool { return st.Pages[i].PN < st.Pages[j].PN })
	return st
}

// SetState replaces the image contents in place (existing pointers to the
// Image stay valid). Pages absent from the state are dropped.
func (im *Image) SetState(st ImageState) error {
	im.next = st.Next
	for pn := range im.pages {
		delete(im.pages, pn)
	}
	for i := range st.Pages {
		ps := &st.Pages[i]
		if len(ps.Data) != pageSize {
			return fmt.Errorf("mem: page %#x has %d bytes, want %d", ps.PN, len(ps.Data), pageSize)
		}
		p := new([pageSize]byte)
		copy(p[:], ps.Data)
		im.pages[ps.PN] = p
	}
	return nil
}

// LineState is one captured cache line (tag array only; data lives in the
// Image).
type LineState struct {
	Tag   uint64 `json:"tag"`
	Valid bool   `json:"valid"`
	LRU   uint64 `json:"lru"`
}

// CacheState is the serialisable state of one cache level.
type CacheState struct {
	Sets    int         `json:"sets"`
	Ways    int         `json:"ways"`
	LRUTick uint64      `json:"lruTick"`
	Lines   []LineState `json:"lines"` // set-major: set s, way w at s*Ways+w
	Stats   CacheStats  `json:"stats"`
}

// State captures the cache's tag array, LRU clock and statistics.
func (c *Cache) State() CacheState {
	st := CacheState{Sets: len(c.sets), Ways: c.cfg.Ways, LRUTick: c.lruTick,
		Lines: make([]LineState, 0, len(c.sets)*c.cfg.Ways), Stats: c.Stats}
	for _, set := range c.sets {
		for _, ln := range set {
			st.Lines = append(st.Lines, LineState{Tag: ln.tag, Valid: ln.valid, LRU: ln.lru})
		}
	}
	return st
}

// SetState replaces the cache's contents with a captured state. The cache
// must have the same geometry the state was captured from.
func (c *Cache) SetState(st CacheState) error {
	if st.Sets != len(c.sets) || st.Ways != c.cfg.Ways {
		return fmt.Errorf("mem: cache %s geometry mismatch: state %dx%d, cache %dx%d",
			c.cfg.Name, st.Sets, st.Ways, len(c.sets), c.cfg.Ways)
	}
	if len(st.Lines) != st.Sets*st.Ways {
		return fmt.Errorf("mem: cache %s has %d lines, want %d", c.cfg.Name, len(st.Lines), st.Sets*st.Ways)
	}
	c.lruTick = st.LRUTick
	c.Stats = st.Stats
	for s := range c.sets {
		for w := range c.sets[s] {
			ls := st.Lines[s*st.Ways+w]
			c.sets[s][w] = line{tag: ls.Tag, valid: ls.Valid, lru: ls.LRU}
		}
	}
	return nil
}

// HierarchyState is the serialisable state of the cache hierarchy. The
// latency/bandwidth configuration (MemLat, MemBusy, NextLinePrefetch) is
// re-established from the simulation config on restore and is not captured.
type HierarchyState struct {
	L1         CacheState `json:"l1"`
	L2         CacheState `json:"l2"`
	BusyUntil  int64      `json:"busyUntil"`
	QueueDelay int64      `json:"queueDelay"`
	Prefetches int64      `json:"prefetches"`
}

// State captures both cache levels and the DRAM-channel state.
func (h *Hierarchy) State() HierarchyState {
	return HierarchyState{
		L1:         h.L1.State(),
		L2:         h.L2.State(),
		BusyUntil:  h.busyUntil,
		QueueDelay: h.QueueDelay,
		Prefetches: h.Prefetches,
	}
}

// SetState replaces the hierarchy's mutable state with a captured one.
func (h *Hierarchy) SetState(st HierarchyState) error {
	if err := h.L1.SetState(st.L1); err != nil {
		return err
	}
	if err := h.L2.SetState(st.L2); err != nil {
		return err
	}
	h.busyUntil = st.BusyUntil
	h.QueueDelay = st.QueueDelay
	h.Prefetches = st.Prefetches
	return nil
}
