package mem

import "testing"

func TestImageReadWrite(t *testing.T) {
	im := NewImage()
	im.WriteInt(0x2000, 4, -7)
	if got := im.ReadInt(0x2000, 4); got != -7 {
		t.Errorf("ReadInt = %d, want -7", got)
	}
	// Sign extension across element widths.
	im.WriteInt(0x3000, 1, -1)
	if got := im.ReadInt(0x3000, 1); got != -1 {
		t.Errorf("1-byte ReadInt = %d, want -1", got)
	}
	if got := im.ReadInt(0x3000, 2); got != 255 {
		t.Errorf("2-byte ReadInt over {0xFF,0x00} = %d, want 255", got)
	}
}

func TestImageCrossPage(t *testing.T) {
	im := NewImage()
	addr := uint64(pageSize - 3)
	data := []byte{1, 2, 3, 4, 5, 6}
	im.WriteBytes(addr, data)
	got := make([]byte, 6)
	im.ReadBytes(addr, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("cross-page byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestImageUntouchedIsZero(t *testing.T) {
	im := NewImage()
	if got := im.ReadInt(0x123456, 8); got != 0 {
		t.Errorf("untouched memory = %d, want 0", got)
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	im := NewImage()
	a := im.Alloc(100, 64)
	b := im.Alloc(100, 64)
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("allocations not 64-aligned: %#x %#x", a, b)
	}
	if b < a+100 {
		t.Errorf("allocations overlap: a=%#x b=%#x", a, b)
	}
}

func TestAllocBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc with non-power-of-two alignment should panic")
		}
	}()
	NewImage().Alloc(8, 3)
}

func TestCloneEqualFirstDiff(t *testing.T) {
	im := NewImage()
	im.WriteInt(0x2000, 8, 42)
	c := im.Clone()
	if !im.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.WriteInt(0x2004, 1, 9)
	if im.Equal(c) {
		t.Fatal("modified clone should differ")
	}
	addr, diff := im.FirstDiff(c)
	if !diff || addr != 0x2004 {
		t.Errorf("FirstDiff = %#x,%v, want 0x2004,true", addr, diff)
	}
	// A page of explicit zeros equals an absent page.
	d := im.Clone()
	d.WriteInt(0x90000, 8, 0)
	if !im.Equal(d) {
		t.Error("explicit zero page should equal absent page")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeB: 1024, Ways: 2, LineB: 64, HitLat: 2})
	if c.Lookup(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Lookup(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Lookup(0x1004) {
		t.Error("same-line access should hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits 1 miss", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 8 sets of 64B lines => addresses 0, 512, 1024 map to set 0.
	c := NewCache(CacheConfig{Name: "t", SizeB: 1024, Ways: 2, LineB: 64, HitLat: 2})
	c.Lookup(0)    // miss, fill way 0
	c.Lookup(512)  // miss, fill way 1
	c.Lookup(0)    // hit, refresh
	c.Lookup(1024) // miss, evicts 512 (LRU)
	if !c.Lookup(0) {
		t.Error("line 0 should still be resident")
	}
	if c.Lookup(512) {
		t.Error("line 512 should have been evicted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := DefaultHierarchy()
	if lat := h.Latency(0x4000); lat != 2+7+80 {
		t.Errorf("cold access latency = %d, want 89", lat)
	}
	if lat := h.Latency(0x4000); lat != 2 {
		t.Errorf("L1 hit latency = %d, want 2", lat)
	}
	// Evict from L1 but not L2: touch enough distinct lines mapping to the
	// same L1 set. L1: 32KiB/64B/4w = 128 sets; stride 128*64 = 8KiB.
	for i := 1; i <= 4; i++ {
		h.Latency(0x4000 + uint64(i*8192))
	}
	if lat := h.Latency(0x4000); lat != 2+7 {
		t.Errorf("L2 hit latency = %d, want 9", lat)
	}
}

func TestSpanLatencyWorstLine(t *testing.T) {
	h := DefaultHierarchy()
	h.Latency(0x8000) // warm first line
	// Span covering the warm line and a cold one: worst-case applies.
	if lat := h.SpanLatency(0x8000, 128); lat != 2+7+80 {
		t.Errorf("span latency = %d, want 89", lat)
	}
	if lat := h.SpanLatency(0x8000, 16); lat != 2 {
		t.Errorf("warm span latency = %d, want 2", lat)
	}
}

func TestMemoryBandwidthQueueing(t *testing.T) {
	h := DefaultHierarchy()
	h.MemBusy = 10
	// Two back-to-back cold misses at the same cycle: the second queues.
	lat1 := h.LatencyAt(100, 0x10000)
	lat2 := h.LatencyAt(100, 0x20000)
	if lat1 != 2+7+80 {
		t.Errorf("first miss latency = %d, want 89", lat1)
	}
	if lat2 != 2+7+80+10 {
		t.Errorf("queued miss latency = %d, want 99", lat2)
	}
	if h.QueueDelay != 10 {
		t.Errorf("queue delay = %d, want 10", h.QueueDelay)
	}
	// A miss after the channel drains pays no queue delay.
	if lat := h.LatencyAt(500, 0x30000); lat != 89 {
		t.Errorf("post-drain miss latency = %d, want 89", lat)
	}
	// Hits never touch the channel.
	if lat := h.LatencyAt(500, 0x10000); lat != 2 {
		t.Errorf("hit latency = %d, want 2", lat)
	}
}

func TestNextLinePrefetch(t *testing.T) {
	h := DefaultHierarchy()
	h.NextLinePrefetch = true
	// Miss at line 0 prefetches line 64: the next access hits L1.
	if lat := h.LatencyAt(0, 0x10000); lat != 89 {
		t.Errorf("first miss latency = %d, want 89", lat)
	}
	if lat := h.LatencyAt(1, 0x10040); lat != 2 {
		t.Errorf("prefetched line latency = %d, want 2 (L1 hit)", lat)
	}
	if h.Prefetches != 1 {
		t.Errorf("prefetches = %d, want 1", h.Prefetches)
	}
	// Hits never prefetch.
	h.LatencyAt(2, 0x10000)
	if h.Prefetches != 1 {
		t.Errorf("prefetches after hit = %d, want still 1", h.Prefetches)
	}
}
