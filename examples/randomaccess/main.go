// RandomAccess: the HPCC GUPS-style kernel.
//
//	for i := 0; i < N; i++ { t[r[i] & mask] = t[r[i] & mask] ^ r[i] }
//
// Updates land on random table slots, so collisions inside a vector group
// are rare but possible — the compiler cannot prove their absence, SVE
// refuses, and SRV vectorises with occasional selective replays. This is
// the randacc benchmark of the paper's evaluation in miniature.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"srvsim/internal/compiler"
	"srvsim/internal/mem"
	"srvsim/internal/pipeline"
)

func main() {
	const (
		n         = 4096
		tableSize = 1024 // power of two
	)

	tbl := &compiler.Array{Name: "t", Elem: 8, Len: tableSize}
	r := &compiler.Array{Name: "r", Elem: 4, Len: n}
	// The "random" values double as pre-masked indices: r[i] in [0,tableSize).
	loop := &compiler.Loop{
		Name: "randomaccess",
		Trip: n,
		Body: []compiler.Stmt{{
			Dst: tbl, Idx: compiler.Via(r, 1, 0),
			Val: compiler.Bin{Op: compiler.OpXor,
				L: compiler.Ref{Arr: tbl, Idx: compiler.Via(r, 1, 0)},
				R: compiler.Ref{Arr: r, Idx: compiler.Affine(1, 0)}},
		}},
	}

	im := mem.NewImage()
	loop.Bind(im)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		im.WriteInt(r.Addr(int64(i)), 4, int64(rng.Intn(tableSize)))
	}
	for i := 0; i < tableSize; i++ {
		im.WriteInt(tbl.Addr(int64(i)), 8, int64(i)*0x9E3779B9)
	}
	ref := im.Clone()
	compiler.Eval(loop, ref)

	c, err := compiler.Compile(loop, im, compiler.ModeSRV)
	if err != nil {
		log.Fatal(err)
	}
	p := pipeline.New(pipeline.DefaultConfig(), c.Prog, im)
	if err := p.Run(); err != nil {
		log.Fatal(err)
	}
	if addr, diff := im.FirstDiff(ref); diff {
		log.Fatalf("MISMATCH at %#x", addr)
	}

	st := p.Ctrl.Stats
	groups := st.Regions
	fmt.Printf("updates:        %d (in %d vector groups)\n", n, groups)
	fmt.Printf("cycles:         %d (%.2f per update)\n", p.Stats.Cycles, float64(p.Stats.Cycles)/n)
	fmt.Printf("RAW collisions: %d -> %d replay rounds, %d lanes re-executed\n",
		st.RAWViol, st.Replays, st.ReplayLanes)
	fmt.Printf("extra vector iterations from replay: %.3f%%\n",
		float64(st.VectorIters-groups)/float64(st.VectorIters)*100)
	fmt.Println("table state matches sequential execution.")
}
