// Histogram: the NPB-IS-style key-counting kernel.
//
//	for i := 0; i < N; i++ { count[key[i]] = count[key[i]] + 1 }
//
// Duplicate keys inside one 16-iteration vector group are genuine
// read-after-write dependences between lanes: a plain vector
// gather-add-scatter would lose increments. SRV detects the duplicate
// lanes at run time and selectively replays them, so the counts come out
// exact. The example compares scalar and SRV cycle counts and verifies the
// final histogram.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"srvsim/internal/compiler"
	"srvsim/internal/mem"
	"srvsim/internal/pipeline"
)

func main() {
	const (
		n       = 8192
		buckets = 512 // small enough to stay cache-resident; duplicates occur
	)

	count := &compiler.Array{Name: "count", Elem: 4, Len: buckets}
	key := &compiler.Array{Name: "key", Elem: 4, Len: n}
	loop := &compiler.Loop{
		Name: "histogram",
		Trip: n,
		Body: []compiler.Stmt{{
			Dst: count, Idx: compiler.Via(key, 1, 0),
			Val: compiler.Bin{Op: compiler.OpAdd,
				L: compiler.Ref{Arr: count, Idx: compiler.Via(key, 1, 0)},
				R: compiler.Const{V: 1}},
		}},
	}
	fmt.Printf("dependence analysis: %v\n", compiler.Analyse(loop).Verdict)

	build := func(seed int64) (*mem.Image, []int64) {
		im := mem.NewImage()
		loop.Bind(im)
		rng := rand.New(rand.NewSource(seed))
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(buckets))
			im.WriteInt(key.Addr(int64(i)), 4, keys[i])
		}
		return im, keys
	}

	// Scalar run.
	imS, keys := build(1)
	cs, err := compiler.Compile(loop, imS, compiler.ModeScalar)
	if err != nil {
		log.Fatal(err)
	}
	ps := pipeline.New(pipeline.DefaultConfig(), cs.Prog, imS)
	if err := ps.Run(); err != nil {
		log.Fatal(err)
	}

	// SRV run on identical data.
	imV, _ := build(1)
	cv, err := compiler.Compile(loop, imV, compiler.ModeSRV)
	if err != nil {
		log.Fatal(err)
	}
	pv := pipeline.New(pipeline.DefaultConfig(), cv.Prog, imV)
	if err := pv.Run(); err != nil {
		log.Fatal(err)
	}

	// Verify against a Go-computed histogram.
	want := make([]int64, buckets)
	for _, k := range keys {
		want[k]++
	}
	for bkt := 0; bkt < buckets; bkt++ {
		got := imV.ReadInt(count.Addr(int64(bkt)), 4)
		if got != want[bkt] {
			log.Fatalf("bucket %d: got %d, want %d", bkt, got, want[bkt])
		}
		if s := imS.ReadInt(count.Addr(int64(bkt)), 4); s != want[bkt] {
			log.Fatalf("scalar bucket %d: got %d, want %d", bkt, s, want[bkt])
		}
	}

	st := pv.Ctrl.Stats
	fmt.Printf("scalar: %6d cycles\n", ps.Stats.Cycles)
	fmt.Printf("SRV:    %6d cycles  (%.2fx speedup)\n",
		pv.Stats.Cycles, float64(ps.Stats.Cycles)/float64(pv.Stats.Cycles))
	fmt.Printf("regions=%d  replays=%d  replayed lanes=%d  RAW violations=%d\n",
		st.Regions, st.Replays, st.ReplayLanes, st.RAWViol)
	fmt.Println("histogram exact — every duplicate-key increment preserved.")
	fmt.Println("(gather-modify-scatter kernels are port-bound — the paper's low-speedup")
	fmt.Println(" class — but SRV is the only way to vectorise them at all.)")
}
