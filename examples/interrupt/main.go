// Interrupt: precise interrupts inside an SRV region (paper §III-D2/D3).
//
// An interrupt delivered mid-region must not lose or duplicate any lane's
// work. The architecture saves just three pieces of state — the current PC,
// the SRV-replay register and the restart PC — writes back the
// non-speculative LSU data (the oldest active lane up to the interrupted PC
// plus all older lanes), and on resumption re-executes only the oldest lane,
// marking every younger lane for a full replay after srv_end.
//
// This example runs the same loop uninterrupted and with interrupts at many
// different cycles, verifying bit-identical memory every time.
package main

import (
	"fmt"
	"log"

	"srvsim/internal/compiler"
	"srvsim/internal/mem"
	"srvsim/internal/pipeline"
)

func buildLoop(n int) (*compiler.Loop, *compiler.Array, *compiler.Array) {
	a := &compiler.Array{Name: "a", Elem: 4, Len: n + 16}
	x := &compiler.Array{Name: "x", Elem: 4, Len: n}
	return &compiler.Loop{
		Name: "interruptible",
		Trip: n,
		Body: []compiler.Stmt{{
			Dst: a, Idx: compiler.Via(x, 1, 0),
			Val: compiler.Bin{Op: compiler.OpAdd,
				L: compiler.Ref{Arr: a, Idx: compiler.Affine(1, 0)},
				R: compiler.Const{V: 2}},
		}},
	}, a, x
}

func seed(l *compiler.Loop, a, x *compiler.Array, n int) *mem.Image {
	im := mem.NewImage()
	l.Bind(im)
	for i := 0; i < n; i++ {
		im.WriteInt(a.Addr(int64(i)), 4, int64(i*3+1))
		xi := int64(i - 1)
		if i%4 == 0 {
			xi = int64(i + 3)
		}
		im.WriteInt(x.Addr(int64(i)), 4, xi)
	}
	return im
}

func main() {
	const n = 64
	loop, a, x := buildLoop(n)
	im := seed(loop, a, x, n)
	ref := im.Clone()
	compiler.Eval(loop, ref)

	c, err := compiler.Compile(loop, im, compiler.ModeSRV)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: no interrupt.
	base := pipeline.New(pipeline.DefaultConfig(), c.Prog, im)
	if err := base.Run(); err != nil {
		log.Fatal(err)
	}
	if addr, diff := im.FirstDiff(ref); diff {
		log.Fatalf("baseline mismatch at %#x", addr)
	}
	fmt.Printf("uninterrupted run: %d cycles, %d regions\n\n", base.Stats.Cycles, base.Ctrl.Stats.Regions)

	// Interrupt at every 7th cycle of the run.
	ok := 0
	for at := int64(5); at < base.Stats.Cycles; at += 7 {
		loop2, a2, x2 := buildLoop(n)
		im2 := seed(loop2, a2, x2, n)
		c2, err := compiler.Compile(loop2, im2, compiler.ModeSRV)
		if err != nil {
			log.Fatal(err)
		}
		ref2 := im2.Clone()
		compiler.Eval(loop2, ref2)
		p := pipeline.New(pipeline.DefaultConfig(), c2.Prog, im2)
		p.ScheduleInterrupt(at, 40) // 40-cycle handler
		if err := p.Run(); err != nil {
			log.Fatalf("interrupt at %d: %v", at, err)
		}
		if addr, diff := im2.FirstDiff(ref2); diff {
			log.Fatalf("interrupt at cycle %d corrupted memory at %#x", at, addr)
		}
		ok++
	}
	fmt.Printf("delivered interrupts at %d distinct cycles — memory bit-identical every time.\n", ok)
	fmt.Println("precise interrupts hold inside speculative SRV regions.")
}
