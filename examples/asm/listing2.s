; The paper's listing 2 — a[x[i]] = a[i] + 2 — as a standalone assembly
; program for `srvsim -file examples/asm/listing2.s`.
;
; The index pattern {3,0,1,2, 7,4,5,6, ...} makes lanes 3, 7, 11 and 15
; consume stale data in every 16-iteration group: the run reports one
; selective replay per region (RAW=4 per group) and memory ends up exactly
; as sequential execution would leave it.

.data 0x2000, 4, 1, 4, 7, 10, 13, 16, 19, 22, 25, 28, 31, 34, 37, 40, 43, 46   ; a[0..15]
.data 0x2040, 4, 49, 52, 55, 58, 61, 64, 67, 70, 73, 76, 79, 82, 85, 88, 91, 94 ; a[16..31]
.data 0x3000, 4, 3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14           ; x[0..15]
.data 0x3040, 4, 19, 16, 17, 18, 23, 20, 21, 22, 27, 24, 25, 26, 31, 28, 29, 30 ; x[16..31]

	movi s0, 0          ; i
	movi s1, 32         ; trip count
	movi s2, 0x2000     ; &a[i] (moving)
	movi s3, 0x3000     ; &x[i] (moving)
	movi s4, 0x2000     ; a base (fixed; x holds absolute indices)
loop:
	srv_start up
	v_load v0, [s2+0], 4
	v_addi v0, v0, 2
	v_load v1, [s3+0], 4
	v_scatter [s4+v1*4+0], v0
	srv_end
	addi s0, s0, 16
	addi s2, s2, 64
	addi s3, s3, 64
	blt s0, s1, loop
	halt
