// SLP: straight-line SRV regions over may-alias pointers — the non-loop use
// of selective replay that paper §III-A points at ("through the SLP
// algorithm").
//
// Sixteen isomorphic statements
//
//	q[k] = p[k] + 1        (k = 0..15)
//
// are packed into ONE vector operation. The compiler cannot prove p and q
// point to different buffers; classic SLP must therefore give up. SRV packs
// anyway. This example runs the pack twice:
//
//  1. p and q disjoint — no replays, straight vector execution;
//  2. q = p + one element (genuine aliasing!) — statement k reads p[k] and
//     writes p[k+1], a serial chain across all 16 lanes; selective replay
//     re-executes the stale lanes until the chain resolves and the result
//     is exactly sequential.
package main

import (
	"fmt"
	"log"

	"srvsim/srv"
)

func buildBlock() (*srv.Block, *srv.Array, *srv.Array) {
	p := &srv.Array{Name: "p", Elem: 4, Len: 64, AliasGroup: 1}
	q := &srv.Array{Name: "q", Elem: 4, Len: 64, AliasGroup: 1}
	b := &srv.Block{Name: "pack"}
	for k := 0; k < 16; k++ {
		b.Stmts = append(b.Stmts, srv.SLPStmt{
			Dst: q, DstIdx: int64(k),
			Val: srv.Add(srv.Load(p, srv.At(0, int64(k))), srv.Int(1)),
		})
	}
	return b, p, q
}

func run(title string, bind func(m *srv.Memory, p, q *srv.Array)) {
	b, p, q := buildBlock()
	m := srv.NewMemory()
	bind(m, p, q)
	for k := 0; k < 64; k++ {
		m.WriteInt(p.Addr(int64(k)), 4, int64(k))
	}
	res, err := srv.RunBlock(b, m, srv.ModeSRV, srv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Verify against sequential execution of the statements.
	b2, p2, q2 := buildBlock()
	m2 := srv.NewMemory()
	bind(m2, p2, q2)
	for k := 0; k < 64; k++ {
		m2.WriteInt(p2.Addr(int64(k)), 4, int64(k))
	}
	srv.ReferenceBlock(b2, m2)
	for k := 0; k < 17; k++ {
		got := m.ReadInt(p.Addr(int64(k)), 4)
		want := m2.ReadInt(p2.Addr(int64(k)), 4)
		if got != want {
			log.Fatalf("%s: p[%d] = %d, want %d", title, k, got, want)
		}
	}
	fmt.Printf("%-28s regions=%d replays=%d lanes re-executed=%d — result exact\n",
		title, res.Regions, res.Replays, res.ReplayedLanes)
}

func main() {
	run("disjoint buffers:", func(m *srv.Memory, p, q *srv.Array) {
		p.Base = m.Alloc(4*64, 64)
		q.Base = m.Alloc(4*64, 64)
	})
	run("aliasing (q = p+1 elem):", func(m *srv.Memory, p, q *srv.Array) {
		p.Base = m.Alloc(4*64, 64)
		q.Base = p.Base + 4
	})
	runGuarded()
	fmt.Println("\nthe same packed code handles all cases — the hardware sorts it out.")
}

// runGuarded packs GUARDED statements: if (p[k] >= 8) q[k] = p[k] + 1.
// The comparisons if-convert into the pack's governing predicate, and the
// predicate composes with selective replay under genuine aliasing.
func runGuarded() {
	build := func() (*srv.Block, *srv.Array, *srv.Array) {
		p := &srv.Array{Name: "p", Elem: 4, Len: 64, AliasGroup: 1}
		q := &srv.Array{Name: "q", Elem: 4, Len: 64, AliasGroup: 1}
		b := &srv.Block{Name: "guarded"}
		for k := 0; k < 16; k++ {
			b.Stmts = append(b.Stmts, srv.SLPStmt{
				Dst: q, DstIdx: int64(k),
				Val: srv.Add(srv.Load(p, srv.At(0, int64(k))), srv.Int(1)),
				Guard: srv.Guard(srv.GE,
					srv.Load(p, srv.At(0, int64(k))), srv.Int(8)),
			})
		}
		return b, p, q
	}
	exec := func(reference bool) (*srv.Memory, *srv.Array) {
		b, p, q := build()
		m := srv.NewMemory()
		p.Base = m.Alloc(4*64, 64)
		q.Base = p.Base + 4 // aliasing again
		for k := 0; k < 64; k++ {
			m.WriteInt(p.Addr(int64(k)), 4, int64(k*3))
		}
		if reference {
			srv.ReferenceBlock(b, m)
		} else if _, err := srv.RunBlock(b, m, srv.ModeSRV, srv.DefaultConfig()); err != nil {
			log.Fatal(err)
		}
		return m, p
	}
	got, p := exec(false)
	want, pw := exec(true)
	// Compare the data range only: compiling the block adds its index
	// tables to the image.
	for k := 0; k < 20; k++ {
		g, w := got.ReadInt(p.Addr(int64(k)), 4), want.ReadInt(pw.Addr(int64(k)), 4)
		if g != w {
			log.Fatalf("guarded pack: p[%d] = %d, want %d", k, g, w)
		}
	}
	fmt.Printf("%-28s guard masks low lanes; replay repairs the rest — result exact\n", "guarded + aliasing:")
}
