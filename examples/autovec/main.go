// Autovec demonstrates the compiler workflow the paper's introduction
// motivates: given a set of candidate loops, decide per loop whether to keep
// it scalar, vectorise it conventionally (SVE), or vectorise it
// speculatively (SRV), using the dependence analysis for legality and the
// static cost model for profitability — then run every loop under its
// chosen mode and verify against sequential semantics.
//
//	verdict Safe              -> SVE
//	verdict Unknown + profitable -> SRV
//	verdict Unknown + unprofitable -> scalar (speculation would not pay)
//	verdict Dependent         -> scalar (vectorisation is illegal)
package main

import (
	"fmt"
	"log"

	"srvsim/internal/compiler"
	"srvsim/srv"
)

// candidate couples a loop with its data initialiser.
type candidate struct {
	name string
	loop *srv.Loop
	fill func(m *srv.Memory)
}

func candidates() []candidate {
	const n = 512

	// 1. saxpy-like: y[i] = 3*x[i] + y[i] — provably safe.
	x1 := &srv.Array{Name: "x", Elem: 4, Len: n}
	y1 := &srv.Array{Name: "y", Elem: 4, Len: n}
	saxpy := &srv.Loop{Name: "saxpy", Trip: n, Body: []srv.Stmt{
		{Dst: y1, Idx: srv.At(1, 0),
			Val: srv.MulAdd(srv.Int(3), srv.Load(x1, srv.At(1, 0)), srv.Load(y1, srv.At(1, 0)))},
	}}

	// 2. indirect update with a wide body — unknown dependences, profitable.
	a2 := &srv.Array{Name: "a", Elem: 4, Len: 2 * n}
	x2 := &srv.Array{Name: "x", Elem: 4, Len: n}
	val := srv.Load(a2, srv.At(1, 0))
	var bs []*srv.Array
	for k := 0; k < 6; k++ {
		b := &srv.Array{Name: fmt.Sprintf("b%d", k), Elem: 4, Len: n}
		bs = append(bs, b)
		val = srv.Add(val, srv.Load(b, srv.At(1, 0)))
	}
	val = srv.Xor(srv.Mul(val, srv.Int(5)), srv.Int(9))
	update := &srv.Loop{Name: "update", Trip: n, Body: []srv.Stmt{
		{Dst: a2, Idx: srv.Via(x2, 1, 0), Val: val},
	}}

	// 3. scatter-only permutation write — unknown dependences but the body
	// is a bare scatter: the drain dominates and the cost model rejects
	// speculation.
	h3 := &srv.Array{Name: "h", Elem: 4, Len: n}
	k3 := &srv.Array{Name: "k", Elem: 4, Len: n}
	perm := &srv.Loop{Name: "perm", Trip: n, Body: []srv.Stmt{
		{Dst: h3, Idx: srv.Via(k3, 1, 0), Val: srv.IV()},
	}}

	// 4. prefix recurrence: p[i+1] = p[i] + q[i] — provably dependent.
	p4 := &srv.Array{Name: "p", Elem: 4, Len: n + 1}
	q4 := &srv.Array{Name: "q", Elem: 4, Len: n}
	prefix := &srv.Loop{Name: "prefix", Trip: n, Body: []srv.Stmt{
		{Dst: p4, Idx: srv.At(1, 1),
			Val: srv.Add(srv.Load(p4, srv.At(1, 0)), srv.Load(q4, srv.At(1, 0)))},
	}}

	return []candidate{
		{"saxpy", saxpy, func(m *srv.Memory) {
			for i := 0; i < n; i++ {
				m.WriteInt(x1.Addr(int64(i)), 4, int64(i%17))
				m.WriteInt(y1.Addr(int64(i)), 4, int64(i%5))
			}
		}},
		{"update", update, func(m *srv.Memory) {
			for i := 0; i < n; i++ {
				m.WriteInt(x2.Addr(int64(i)), 4, int64((i*7)%(2*n)))
				m.WriteInt(a2.Addr(int64(i)), 4, int64(i%13))
				for _, b := range bs {
					m.WriteInt(b.Addr(int64(i)), 4, int64(i%9))
				}
			}
		}},
		{"perm", perm, func(m *srv.Memory) {
			for i := 0; i < n; i++ {
				m.WriteInt(k3.Addr(int64(i)), 4, int64((i*7+3)%n))
			}
		}},
		{"prefix", prefix, func(m *srv.Memory) {
			for i := 0; i < n; i++ {
				m.WriteInt(q4.Addr(int64(i)), 4, int64(i%7))
			}
		}},
	}
}

// choose applies the paper's decision procedure.
func choose(l *srv.Loop) (compiler.Mode, string) {
	switch srv.Analyse(l) {
	case srv.Safe:
		return srv.ModeSVE, "safe -> SVE"
	case srv.Dependent:
		return srv.ModeScalar, "provably dependent -> scalar"
	default:
		if est := srv.EstimateSpeedup(l); srv.Profitable(l) {
			return srv.ModeSRV, fmt.Sprintf("unknown deps, est %.2fx -> SRV", est)
		} else {
			return srv.ModeScalar, fmt.Sprintf("unknown deps, est %.2fx -> scalar", est)
		}
	}
}

func main() {
	fmt.Println("loop     decision                               scalar    chosen   speedup")
	fmt.Println("-------  -------------------------------------  --------  -------  -------")
	for _, c := range candidates() {
		mode, why := choose(c.loop)

		m := srv.NewMemory()
		c.loop.Bind(m)
		c.fill(m)

		// Sequential reference for verification.
		ref := m.Clone()
		srv.Reference(c.loop, ref)

		// Scalar baseline.
		ms := m.Clone()
		scalar, err := srv.Run(c.loop, ms, srv.ModeScalar, srv.DefaultConfig())
		if err != nil {
			log.Fatalf("%s scalar: %v", c.name, err)
		}

		// Chosen mode.
		mc := m.Clone()
		chosen, err := srv.Run(c.loop, mc, mode, srv.DefaultConfig())
		if err != nil {
			log.Fatalf("%s chosen: %v", c.name, err)
		}
		if addr, diff := mc.FirstDiff(ref); diff {
			log.Fatalf("%s: result diverges at %#x", c.name, addr)
		}

		fmt.Printf("%-7s  %-37s  %8d  %7d  %6.2fx\n",
			c.name, why, scalar.Cycles, chosen.Cycles,
			float64(scalar.Cycles)/float64(chosen.Cycles))
	}
	fmt.Println("\nall results verified against sequential execution.")
}
