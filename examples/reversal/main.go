// Reversal demonstrates the loop-direction analysis behind the paper's
// DOWN region attribute (§III-A: srv_start carries an UP/DOWN direction so
// that compilers can reverse loops).
//
// The kernel is a shift-right: a[i+1] = a[i] + 1.
//
//   - Iterating UPWARD the dependence is a flow (iteration i produces what
//     i+1 consumes): vectorisation is illegal, the analysis says Dependent,
//     and SVE compilation is refused.
//   - Iterating DOWNWARD the same subscripts form an anti dependence
//     (every iteration reads a value a later iteration overwrites):
//     the analysis says Safe and plain SVE vectorises it.
//
// The example also shows the speculative variant: a shift through an index
// array (a[i] = a[x[i]] + 1 descending) stays statically unknown, and SRV
// executes it with a DOWN region.
package main

import (
	"fmt"
	"log"

	"srvsim/srv"
)

const n = 1024

func shift(down bool) (*srv.Loop, *srv.Array) {
	a := &srv.Array{Name: "a", Elem: 4, Len: n + 32}
	return &srv.Loop{
		Name: "shift", Trip: n, Down: down,
		Body: []srv.Stmt{{
			Dst: a, Idx: srv.At(1, 1),
			Val: srv.Add(srv.Load(a, srv.At(1, 0)), srv.Int(1)),
		}},
	}, a
}

func main() {
	// Ascending: provably dependent, vectorisation refused.
	up, _ := shift(false)
	fmt.Printf("ascending  a[i+1] = a[i] + 1: verdict %v\n", srv.Analyse(up))
	if _, err := srv.Run(up, srv.NewMemory(), srv.ModeSVE, srv.DefaultConfig()); err != nil {
		fmt.Println("  SVE:", err)
	}

	// Descending: the same loop reversed is provably safe.
	downLoop, a := shift(true)
	fmt.Printf("\ndescending same subscripts:   verdict %v\n", srv.Analyse(downLoop))

	m := srv.NewMemory()
	downLoop.Bind(m)
	for i := 0; i <= n; i++ {
		m.WriteInt(a.Addr(int64(i)), 4, int64(i*2))
	}
	ref := m.Clone()
	srv.Reference(downLoop, ref)

	scalar, err := srv.Run(downLoop, m.Clone(), srv.ModeScalar, srv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	mv := m.Clone()
	sve, err := srv.Run(downLoop, mv, srv.ModeSVE, srv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if addr, diff := mv.FirstDiff(ref); diff {
		log.Fatalf("SVE result diverges at %#x", addr)
	}
	fmt.Printf("  scalar: %6d cycles\n", scalar.Cycles)
	fmt.Printf("  SVE:    %6d cycles  (%.2fx, verified against sequential)\n",
		sve.Cycles, float64(scalar.Cycles)/float64(sve.Cycles))

	// Indirect shift descending: statically unknown, handled by a DOWN SRV
	// region.
	x := &srv.Array{Name: "x", Elem: 4, Len: n}
	a2 := &srv.Array{Name: "a2", Elem: 4, Len: n + 32}
	ind := &srv.Loop{
		Name: "indshift", Trip: n, Down: true,
		Body: []srv.Stmt{{
			Dst: a2, Idx: srv.At(1, 0),
			Val: srv.Add(srv.Load(a2, srv.Via(x, 1, 0)), srv.Int(1)),
		}},
	}
	fmt.Printf("\ndescending a[i] = a[x[i]]+1:  verdict %v\n", srv.Analyse(ind))
	m2 := srv.NewMemory()
	ind.Bind(m2)
	for i := 0; i < n; i++ {
		m2.WriteInt(a2.Addr(int64(i)), 4, int64(i))
		xi := i - 1
		if xi < 0 {
			xi = 0
		}
		m2.WriteInt(x.Addr(int64(i)), 4, int64(xi))
	}
	ref2 := m2.Clone()
	srv.Reference(ind, ref2)
	res, err := srv.Run(ind, m2, srv.ModeSRV, srv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if addr, diff := m2.FirstDiff(ref2); diff {
		log.Fatalf("SRV DOWN result diverges at %#x", addr)
	}
	fmt.Printf("  SRV DOWN regions: %d, replays: %d — verified against sequential.\n",
		res.Regions, res.Replays)
}
