// Quickstart: the paper's motivating example (listing 1) through the
// public API.
//
//	for i := 0; i < N; i++ { a[x[i]] = a[i] + 2 }
//
// With x = {3,0,1,2, 7,4,5,6, ...} a read-after-write dependence crosses the
// SIMD lanes every four iterations, so no compiler may vectorise this loop —
// unless the hardware catches and repairs the violations. This example
// declares the loop, shows the dependence analysis refusing SVE, runs it
// under SRV on the cycle simulator, and verifies the selective replay of
// lanes {3,7,11,15} preserved sequential semantics.
package main

import (
	"fmt"
	"log"

	"srvsim/srv"
)

func main() {
	const n = 256

	// Declare the loop: a[x[i]] = a[i] + 2.
	a := &srv.Array{Name: "a", Elem: 4, Len: n + 16}
	x := &srv.Array{Name: "x", Elem: 4, Len: n}
	loop := &srv.Loop{
		Name: "listing1",
		Trip: n,
		Body: []srv.Stmt{{
			Dst: a, Idx: srv.Via(x, 1, 0),
			Val: srv.Add(srv.Load(a, srv.At(1, 0)), srv.Int(2)),
		}},
	}

	// The compiler cannot disambiguate a[x[i]] against a[i].
	fmt.Printf("dependence analysis: %v\n", srv.Analyse(loop))
	if _, err := srv.Run(loop, srv.NewMemory(), srv.ModeSVE, srv.DefaultConfig()); err != nil {
		fmt.Println("SVE vectorisation:", err)
	}

	// Bind arrays and fill the paper's index pattern.
	m := srv.NewMemory()
	loop.Bind(m)
	for i := 0; i < n; i++ {
		m.WriteInt(a.Addr(int64(i)), 4, int64(i*10))
		xi := int64(i - 1)
		if i%4 == 0 {
			xi = int64(i + 3)
		}
		m.WriteInt(x.Addr(int64(i)), 4, xi)
	}

	// Compare scalar vs SRV on identical inputs; Compare also verifies both
	// against the sequential reference.
	cmp, err := srv.Compare(loop, m, srv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nscalar:            %6d cycles\n", cmp.Scalar.Cycles)
	fmt.Printf("SRV:               %6d cycles  (%.2fx speedup)\n", cmp.SRV.Cycles, cmp.Speedup)
	fmt.Printf("SRV regions:       %d\n", cmp.SRV.Regions)
	fmt.Printf("replays:           %d (lanes 3,7,11,15 of every group)\n", cmp.SRV.Replays)
	fmt.Printf("lanes re-executed: %d\n", cmp.SRV.ReplayedLanes)
	fmt.Printf("RAW violations:    %d\n", cmp.SRV.RAW)
	fmt.Println("\nresults verified against sequential execution — semantics preserved.")
}
