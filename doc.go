// Package srvsim is a from-scratch Go reproduction of "Speculative
// Vectorisation with Selective Replay" (Sun, Gabrielli, Jones — ISCA 2021):
// a cycle-level out-of-order SIMD core with the SRV load-store-unit
// extensions, a loop auto-vectoriser that emits srv_start/srv_end-bracketed
// regions for unknown-dependence loops, the FlexVec comparison emulator, a
// McPAT-style power model, and a calibrated workload suite regenerating
// every table and figure of the paper's evaluation.
//
// See README.md for a guide, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured comparison. The benchmarks in
// bench_test.go regenerate each experiment:
//
//	go test -bench=. -benchmem
package srvsim
