GO ?= go

.PHONY: build test check bench timing

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static vetting plus the race detector over
# the packages with concurrency (harness worker pool) and the rewritten
# LSU hot path.
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./internal/harness ./internal/lsu

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/lsu ./internal/pipeline

# timing regenerates BENCH_harness.json (per-benchmark wall-clock of the
# experiment harness on this machine).
timing: build
	$(GO) run ./cmd/srvbench -timing BENCH_harness.json
