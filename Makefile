GO ?= go

.PHONY: build test check fmt-check bench bench-speed timing bench-gate chaos-smoke serve-smoke serve-chaos resume-smoke obs-smoke fleet-smoke tenant-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# fmt-check fails on any file gofmt would rewrite.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# check is the pre-merge gate: formatting, static vetting, the observability
# smoke, plus the race detector over the packages with concurrency (harness
# worker pool) and the rewritten LSU hot path.
check: fmt-check serve-chaos resume-smoke obs-smoke fleet-smoke tenant-smoke
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./internal/harness ./internal/lsu ./internal/serve ./internal/gateway

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/lsu ./internal/pipeline

# bench-speed is the simulator-throughput check: the core hot-path
# microbenchmarks with allocation reporting (the scheduler pop path, the
# observability hooks, the bitvec disambiguation kernels, and whole-pipeline
# cycles/sec), then a fresh timing report (BENCH_harness.json) carrying
# informational cycles_per_sec deltas against the previous run. Wall-clock
# numbers are machine-relative: eyeball them, gate on `make bench-gate`.
bench-speed: build
	$(GO) test -run '^$$' -bench 'QuietTarget|AdvanceQuiet|ObserveCycle|Pipeline' -benchmem ./internal/pipeline
	$(GO) test -run '^$$' -bench 'Mask128' -benchmem ./internal/bitvec
	$(GO) run ./cmd/srvbench -timing BENCH_harness.json

# timing regenerates BENCH_harness.json (per-benchmark wall-clock of the
# experiment harness on this machine).
timing: build
	$(GO) run ./cmd/srvbench -timing BENCH_harness.json

# bench-gate runs the harness fresh and gates its simulated-cycle totals
# against the committed baseline: a >10% geomean regression fails the build.
# GATE_FLAGS narrows the run (e.g. GATE_FLAGS="-benchmarks is,bzip2"); the
# gate skips baseline benchmarks the fresh run did not cover.
GATE_FLAGS ?=
bench-gate: build
	$(GO) run ./cmd/srvbench -timing .bench-fresh.json $(GATE_FLAGS)
	$(GO) run ./cmd/benchgate BENCH_baseline.json .bench-fresh.json; \
	code=$$?; rm -f .bench-fresh.json; exit $$code

# chaos-smoke is the resilience drill: fault-inject 20% of simulations on a
# single figure and require the run to complete with contained failures
# (exit code 3 — anything else, including a clean 0 or a fatal 1, fails).
chaos-smoke: build
	$(GO) build -o .chaos-smoke.bin ./cmd/srvbench
	./.chaos-smoke.bin -exp fig6 -chaos 0.2 -crashdir chaos-crashes > /dev/null; \
	code=$$?; rm -rf chaos-crashes .chaos-smoke.bin; \
	if [ $$code -ne 3 ]; then echo "chaos-smoke: exit $$code, want 3"; exit 1; fi; \
	echo "chaos-smoke: ok (completed with contained failures)"

# serve-smoke boots the srvd daemon on a loopback port, submits one
# simulation, and requires the identical resubmission to be a byte-identical
# cache hit (srvd -smoke runs the whole loop in-process and exits non-zero
# on any deviation).
serve-smoke: build
	$(GO) run ./cmd/srvd -smoke

# obs-smoke is the observability acceptance drill: boot the daemon on a
# loopback port, run one traced job, require every client/server/progress
# span to share a single TraceID, and require the Prometheus exposition to
# parse and account for the job.
obs-smoke: build
	$(GO) run ./cmd/srvd -obs-smoke

# resume-smoke is the checkpoint/resume acceptance drill, run under the race
# detector: a daemon SIGKILLed mid-simulation (machine checkpoints already
# journaled) must resume the job from its last checkpoint on restart and
# finish it byte-identical to an uninterrupted run.
resume-smoke: build
	$(GO) test -race -timeout 15m -run 'TestSIGKILLMidSimResume|TestPreemptAndResume' ./internal/serve

# fleet-smoke is the gateway acceptance drill, run under the race detector:
# an in-process 3-node fleet behind srvgw takes a batch of submissions,
# one node is drained and its listener torn down mid-queue, and the run
# must finish with zero lost jobs, results byte-identical to local
# execution, a gateway cache hit on resubmission, and one client-rooted
# trace spanning gateway and node.
fleet-smoke: build
	$(GO) run -race ./cmd/srvgw -smoke

# tenant-smoke is the multi-tenant isolation drill, run under the race
# detector: an in-process 2-node fleet behind srvgw takes a flooding tenant
# and an interactive tenant concurrently; the interactive jobs must finish
# (bit-identical to local execution) while the flood is still backlogged, a
# bursting tenant must be refused with an honest retry_after_ms, brownout
# must engage under saturation (visible in /v1/healthz, cache hits still
# served) and disengage after drain, and zero jobs may be lost.
tenant-smoke: build
	$(GO) run -race ./cmd/srvgw -tenant-smoke

# serve-chaos is the service-layer resilience drill, run under the race
# detector: remote submissions through a seeded fault-injecting transport
# must come back bit-identical, a SIGKILLed daemon must recover its journal
# on restart (completed results byte-identical from cache, interrupted jobs
# re-run), and SIGTERM must drain gracefully with exit 0.
serve-chaos: build
	$(GO) test -race -timeout 15m -run 'TestChaos|TestKillRestartRecovery|TestGracefulDrain|TestJournal' ./internal/serve
