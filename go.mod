module srvsim

go 1.22
