package srv_test

import (
	"strings"
	"testing"

	"srvsim/srv"
)

// buildListing1 declares the paper's motivating loop through the public API.
func buildListing1(n int) (*srv.Loop, *srv.Array, *srv.Array) {
	a := &srv.Array{Name: "a", Elem: 4, Len: n + 16}
	x := &srv.Array{Name: "x", Elem: 4, Len: n}
	loop := &srv.Loop{
		Name: "listing1",
		Trip: n,
		Body: []srv.Stmt{{
			Dst: a, Idx: srv.Via(x, 1, 0),
			Val: srv.Add(srv.Load(a, srv.At(1, 0)), srv.Int(2)),
		}},
	}
	return loop, a, x
}

func TestPublicAPICompare(t *testing.T) {
	const n = 256
	loop, a, x := buildListing1(n)
	m := srv.NewMemory()
	loop.Bind(m)
	for i := 0; i < n; i++ {
		m.WriteInt(a.Addr(int64(i)), 4, int64(i*3))
		xi := int64(i - 1)
		if i%4 == 0 {
			xi = int64(i + 3)
		}
		m.WriteInt(x.Addr(int64(i)), 4, xi)
	}

	if v := srv.Analyse(loop); v != srv.Unknown {
		t.Fatalf("verdict = %v, want unknown", v)
	}
	if _, err := srv.Run(loop, m.Clone(), srv.ModeSVE, srv.DefaultConfig()); err == nil {
		t.Fatal("SVE must refuse the unknown-dependence loop")
	}

	cmp, err := srv.Compare(loop, m, srv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup <= 1.0 {
		t.Errorf("SRV speedup = %.2f, want > 1", cmp.Speedup)
	}
	if cmp.SRV.Replays != int64(n/16) {
		t.Errorf("replays = %d, want %d (one per group)", cmp.SRV.Replays, n/16)
	}
	if cmp.SRV.RAW == 0 {
		t.Error("RAW violations must be recorded")
	}
	if !strings.Contains(cmp.SRV.Stats, "srv.replays") {
		t.Error("result must carry the statistics report")
	}
}

func TestPublicAPIGuardedLoop(t *testing.T) {
	const n = 64
	a := &srv.Array{Name: "a", Elem: 4, Len: n}
	b := &srv.Array{Name: "b", Elem: 4, Len: n}
	x := &srv.Array{Name: "x", Elem: 4, Len: n}
	loop := &srv.Loop{
		Name: "guarded",
		Trip: n,
		Body: []srv.Stmt{{
			Dst: a, Idx: srv.Via(x, 1, 0),
			Val:  srv.MulAdd(srv.Load(b, srv.At(1, 0)), srv.Int(3), srv.IV()),
			Mask: srv.Guard(srv.LT, srv.Load(b, srv.At(1, 0)), srv.Int(20)),
		}},
	}
	m := srv.NewMemory()
	loop.Bind(m)
	for i := 0; i < n; i++ {
		m.WriteInt(a.Addr(int64(i)), 4, 1)
		m.WriteInt(b.Addr(int64(i)), 4, int64(i%40))
		m.WriteInt(x.Addr(int64(i)), 4, int64(i))
	}
	cmp, err := srv.Compare(loop, m, srv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SRV.Cycles == 0 || cmp.Scalar.Cycles == 0 {
		t.Error("both runs must report cycles")
	}
}

func TestPublicAPIAssembler(t *testing.T) {
	prog, err := srv.Assemble(`
	movi s0, 7
	addi s1, s0, 35
	halt`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Execute(prog, srv.NewMemory(), srv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 3 {
		t.Errorf("instructions = %d, want 3", res.Instructions)
	}
	text := srv.Disassemble(prog)
	if !strings.Contains(text, "addi s1, s0, 35") {
		t.Errorf("disassembly wrong:\n%s", text)
	}
}
