package srv_test

import (
	"strings"
	"testing"

	"srvsim/srv"
)

// TestRunWithInterrupt verifies the public interrupt path preserves
// sequential semantics when the handler fires mid-region.
func TestRunWithInterrupt(t *testing.T) {
	const n = 256
	a := &srv.Array{Name: "a", Elem: 4, Len: n + 16}
	x := &srv.Array{Name: "x", Elem: 4, Len: n}
	loop := &srv.Loop{Trip: n, Body: []srv.Stmt{
		{Dst: a, Idx: srv.Via(x, 1, 0),
			Val: srv.Sub(srv.Load(a, srv.At(1, 0)), srv.Int(3))},
	}}
	m := srv.NewMemory()
	loop.Bind(m)
	for i := 0; i < n; i++ {
		m.WriteInt(a.Addr(int64(i)), 4, int64(i*5))
		xi := int64(i - 1)
		if i%4 == 0 {
			xi = int64(i + 3)
		}
		m.WriteInt(x.Addr(int64(i)), 4, xi)
	}
	ref := m.Clone()
	srv.Reference(loop, ref)

	res, err := srv.RunWithInterrupt(loop, m, srv.ModeSRV, srv.DefaultConfig(), 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	if addr, diff := m.FirstDiff(ref); diff {
		t.Fatalf("interrupted run diverges at %#x", addr)
	}
	if res.Regions == 0 {
		t.Error("regions must be counted")
	}
}

// TestRunWithInterruptCompileError covers the error path.
func TestRunWithInterruptCompileError(t *testing.T) {
	a := &srv.Array{Name: "a", Elem: 4, Len: 64}
	dep := &srv.Loop{Trip: 32, Body: []srv.Stmt{
		{Dst: a, Idx: srv.At(1, 1), Val: srv.Load(a, srv.At(1, 0))},
	}}
	m := srv.NewMemory()
	dep.Bind(m)
	if _, err := srv.RunWithInterrupt(dep, m, srv.ModeSVE, srv.DefaultConfig(), 10, 10); err == nil {
		t.Error("SVE compilation of a dependent loop must fail")
	}
}

// TestRunBlock exercises the SLP public API: a straight-line block with
// may-aliasing arrays, SRV-packed, verified against the sequential block
// evaluator.
func TestRunBlock(t *testing.T) {
	// Two views of the same allocation (AliasGroup marks may-aliasing).
	p := &srv.Array{Name: "p", Elem: 4, Len: 64, AliasGroup: 1}
	q := &srv.Array{Name: "q", Elem: 4, Len: 64, AliasGroup: 1}
	blk := &srv.Block{Name: "stencil"}
	for i := 0; i < 16; i++ {
		blk.Stmts = append(blk.Stmts, srv.SLPStmt{
			Dst: p, DstIdx: int64(i),
			Val: srv.Add(srv.Load(q, srv.At(0, int64(i))), srv.Int(100)),
		})
	}

	m := srv.NewMemory()
	blk.Bind(m)
	q.Base = p.Base + 8 // real overlap: q[i] = p[i+2]
	for i := 0; i < 64; i++ {
		m.WriteInt(p.Addr(int64(i)), 4, int64(i))
	}
	ref := m.Clone()
	srv.ReferenceBlock(blk, ref)

	// Compare only the data range: compiling a block writes its index
	// tables into the image, which the reference image does not contain.
	checkData := func(t *testing.T, got *srv.Memory, label string) {
		t.Helper()
		for i := 0; i < 64; i++ {
			w, g := ref.ReadInt(p.Addr(int64(i)), 4), got.ReadInt(p.Addr(int64(i)), 4)
			if w != g {
				t.Fatalf("%s: p[%d] = %d, want %d", label, i, g, w)
			}
		}
	}

	res, err := srv.RunBlock(blk, m, srv.ModeSRV, srv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkData(t, m, "SLP SRV")
	if res.Regions == 0 {
		t.Error("the packed block must execute at least one SRV region")
	}

	// Scalar mode must agree too.
	m2 := srv.NewMemory()
	for i := 0; i < 64; i++ {
		m2.WriteInt(p.Addr(int64(i)), 4, int64(i))
	}
	if _, err := srv.RunBlock(blk, m2, srv.ModeScalar, srv.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	checkData(t, m2, "scalar")
}

// TestCostModelAPI covers EstimateSpeedup/Profitable and their agreement.
func TestCostModelAPI(t *testing.T) {
	a := &srv.Array{Name: "a", Elem: 4, Len: 1024}
	x := &srv.Array{Name: "x", Elem: 4, Len: 1024}
	var wide srv.Expr = srv.Load(a, srv.At(1, 0))
	for k := 0; k < 8; k++ {
		b := &srv.Array{Name: "b", Elem: 4, Len: 1024}
		wide = srv.Add(srv.And(wide, srv.Int(255)), srv.Load(b, srv.At(1, 0)))
	}
	good := &srv.Loop{Trip: 512, Body: []srv.Stmt{{Dst: a, Idx: srv.Via(x, 1, 0), Val: wide}}}
	bad := &srv.Loop{Trip: 512, Body: []srv.Stmt{{Dst: a, Idx: srv.Via(x, 1, 0), Val: srv.IV()}}}

	if est := srv.EstimateSpeedup(good); est <= 1.5 || !srv.Profitable(good) {
		t.Errorf("wide loop estimate %.2f must be profitable", est)
	}
	if est := srv.EstimateSpeedup(bad); est >= 1.5 || srv.Profitable(bad) {
		t.Errorf("bare scatter estimate %.2f must be rejected", est)
	}
}

// TestExecuteCycleBudget covers Execute's error path (an infinite loop
// exhausts MaxCycles).
func TestExecuteCycleBudget(t *testing.T) {
	prog, err := srv.Assemble(`
loop:
	addi s0, s0, 1
	jmp loop
	halt`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := srv.DefaultConfig()
	cfg.MaxCycles = 1000
	_, err = srv.Execute(prog, srv.NewMemory(), cfg)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("infinite loop must exhaust the cycle budget, got %v", err)
	}
}

// TestRunProgram runs a two-phase synthetic application: a provably safe
// SVE loop followed by an unknown-dependence SRV loop, in one program.
func TestRunProgram(t *testing.T) {
	const n = 256
	a := &srv.Array{Name: "a", Elem: 4, Len: n}
	b := &srv.Array{Name: "b", Elem: 4, Len: n}
	safe := &srv.Loop{Name: "p0", Trip: n, Body: []srv.Stmt{
		{Dst: a, Idx: srv.At(1, 0), Val: srv.Add(srv.Load(b, srv.At(1, 0)), srv.Int(5))},
	}}
	h := &srv.Array{Name: "h", Elem: 4, Len: n}
	x := &srv.Array{Name: "x", Elem: 4, Len: n}
	spec := &srv.Loop{Name: "p1", Trip: n, Body: []srv.Stmt{
		{Dst: h, Idx: srv.Via(x, 1, 0), Val: srv.Add(srv.Load(a, srv.At(1, 0)), srv.Int(1))},
	}}

	m := srv.NewMemory()
	safe.Bind(m)
	spec.Bind(m)
	for i := 0; i < n; i++ {
		m.WriteInt(b.Addr(int64(i)), 4, int64(i*2))
		m.WriteInt(x.Addr(int64(i)), 4, int64((i*13)%n))
	}
	ref := m.Clone()
	srv.Reference(safe, ref)
	srv.Reference(spec, ref)

	res, err := srv.RunProgram([]srv.Phase{
		{Loop: safe, Mode: srv.ModeSVE},
		{Loop: spec, Mode: srv.ModeSRV},
	}, m, srv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if addr, diff := m.FirstDiff(ref); diff {
		t.Fatalf("program diverges at %#x", addr)
	}
	if res.Regions != n/16 {
		t.Errorf("regions = %d, want %d (only phase 1 is speculative)", res.Regions, n/16)
	}

	// Phase legality: an SVE phase with a dependent loop must be refused.
	dep := &srv.Loop{Trip: n, Body: []srv.Stmt{
		{Dst: a, Idx: srv.At(1, 1), Val: srv.Load(a, srv.At(1, 0))},
	}}
	if _, err := srv.RunProgram([]srv.Phase{{Loop: dep, Mode: srv.ModeSVE}}, srv.NewMemory(), srv.DefaultConfig()); err == nil {
		t.Error("dependent SVE phase must be refused")
	}
}
