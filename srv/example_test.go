package srv_test

import (
	"fmt"

	"srvsim/srv"
)

// ExampleAnalyse classifies three loops the way the paper's compiler pass
// would: provably safe (vectorise with plain SVE), statically undecidable
// (the SRV candidates), and provably dependent (leave scalar).
func ExampleAnalyse() {
	a := &srv.Array{Name: "a", Elem: 4, Len: 1024}
	b := &srv.Array{Name: "b", Elem: 4, Len: 1024}
	x := &srv.Array{Name: "x", Elem: 4, Len: 1024}

	// a[i] = b[i] + 1: disjoint arrays, affine subscripts.
	safe := &srv.Loop{Trip: 512, Body: []srv.Stmt{
		{Dst: a, Idx: srv.At(1, 0), Val: srv.Add(srv.Load(b, srv.At(1, 0)), srv.Int(1))},
	}}
	// a[x[i]] = a[i] + 1: the store address is a runtime value.
	unknown := &srv.Loop{Trip: 512, Body: []srv.Stmt{
		{Dst: a, Idx: srv.Via(x, 1, 0), Val: srv.Add(srv.Load(a, srv.At(1, 0)), srv.Int(1))},
	}}
	// a[i+1] = a[i] + 1: a loop-carried dependence at distance 1.
	dependent := &srv.Loop{Trip: 512, Body: []srv.Stmt{
		{Dst: a, Idx: srv.At(1, 1), Val: srv.Add(srv.Load(a, srv.At(1, 0)), srv.Int(1))},
	}}

	fmt.Println(srv.Analyse(safe) == srv.Safe)
	fmt.Println(srv.Analyse(unknown) == srv.Unknown)
	fmt.Println(srv.Analyse(dependent) == srv.Dependent)
	// Output:
	// true
	// true
	// true
}

// ExampleRun executes a loop on the cycle-level core and reads the results
// back from the memory image.
func ExampleRun() {
	a := &srv.Array{Name: "a", Elem: 8, Len: 64}
	loop := &srv.Loop{Trip: 64, Body: []srv.Stmt{
		{Dst: a, Idx: srv.At(1, 0), Val: srv.Mul(srv.IV(), srv.IV())}, // a[i] = i*i
	}}
	m := srv.NewMemory()
	loop.Bind(m)

	res, err := srv.Run(loop, m, srv.ModeSRV, srv.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("regions:", res.Regions)
	fmt.Println("a[7] =", m.ReadInt(a.Addr(7), 8))
	// Output:
	// regions: 4
	// a[7] = 49
}

// ExampleCompare measures scalar vs speculative-vector execution of a loop
// with statically unknown dependences, verifying both against the
// sequential reference. The kernel stores through an index array whose
// runtime pattern ({3,0,1,2, 7,4,5,6, ...}, the paper's listing 1) carries
// a real read-after-write dependence into lanes 3, 7, 11 and 15 of every
// 16-iteration group, so each of the 64 vector groups replays exactly once.
func ExampleCompare() {
	const n = 1024
	a := &srv.Array{Name: "a", Elem: 4, Len: 4*n + 32}
	x := &srv.Array{Name: "x", Elem: 4, Len: n + 32}
	var bs []*srv.Array
	for k := 0; k < 10; k++ {
		bs = append(bs, &srv.Array{Name: fmt.Sprintf("b%d", k), Elem: 4, Len: n + 32})
	}
	// a[x[i]] = f(a[i], b0[i], ..., b9[i]) — a wide reduction body feeding an
	// indirect store.
	val := srv.Load(a, srv.At(1, 0))
	for _, b := range bs {
		val = srv.Add(val, srv.Load(b, srv.At(1, 0)))
	}
	for c := int64(3); c < 9; c++ {
		val = srv.Mul(val, srv.Int(c))
		val = srv.Xor(val, srv.Int(c+1))
	}
	loop := &srv.Loop{Trip: n, Body: []srv.Stmt{
		{Dst: a, Idx: srv.Via(x, 1, 0), Val: val},
	}}
	m := srv.NewMemory()
	loop.Bind(m)
	for i := 0; i < n; i++ {
		xi := int64(i - 1)
		if i%4 == 0 {
			xi = int64(i + 3)
		}
		m.WriteInt(x.Addr(int64(i)), 4, xi)
		for _, b := range bs {
			m.WriteInt(b.Addr(int64(i)), 4, int64(i%9))
		}
	}

	cmp, err := srv.Compare(loop, m, srv.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("verdict unknown:", srv.Analyse(loop) == srv.Unknown)
	fmt.Println("regions:", cmp.SRV.Regions)
	fmt.Println("replays:", cmp.SRV.Replays)
	fmt.Println("srv faster:", cmp.Speedup > 1.5)
	// Output:
	// verdict unknown: true
	// regions: 64
	// replays: 64
	// srv faster: true
}

// ExampleGuard if-converts a conditional statement: under vector execution
// the comparison becomes a predicate and the store is masked.
func ExampleGuard() {
	a := &srv.Array{Name: "a", Elem: 4, Len: 128}
	b := &srv.Array{Name: "b", Elem: 4, Len: 128}
	// if (b[i] >= 50) a[i] = b[i]
	loop := &srv.Loop{Trip: 128, Body: []srv.Stmt{
		{Dst: a, Idx: srv.At(1, 0), Val: srv.Load(b, srv.At(1, 0)),
			Mask: srv.Guard(srv.GE, srv.Load(b, srv.At(1, 0)), srv.Int(50))},
	}}
	m := srv.NewMemory()
	loop.Bind(m)
	for i := 0; i < 128; i++ {
		m.WriteInt(b.Addr(int64(i)), 4, int64(i))
		m.WriteInt(a.Addr(int64(i)), 4, -1)
	}
	if _, err := srv.Run(loop, m, srv.ModeSRV, srv.DefaultConfig()); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("a[49] =", m.ReadInt(a.Addr(49), 4))
	fmt.Println("a[50] =", m.ReadInt(a.Addr(50), 4))
	// Output:
	// a[49] = -1
	// a[50] = 50
}

// ExampleAssemble shows the textual ISA round trip: programs written in the
// assembly syntax execute on the same simulated core.
func ExampleAssemble() {
	prog, err := srv.Assemble(`
	movi    s0, 4096
	movi    s1, 0
	srv_start up
	v_iota  v0, s1
	v_store [s0+0], v0, 8
	srv_end
	halt`)
	if err != nil {
		fmt.Println(err)
		return
	}
	m := srv.NewMemory()
	res, err := srv.Execute(prog, m, srv.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("regions:", res.Regions)
	fmt.Println("mem[4096+5*8] =", m.ReadInt(4096+5*8, 8))
	// Output:
	// regions: 1
	// mem[4096+5*8] = 5
}
