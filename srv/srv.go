// Package srv is the public API of the selective-replay vectorisation
// library: declare a loop over arrays, hand it to the compiler in scalar or
// SRV form, and execute it on the cycle-level out-of-order core — or
// assemble programs directly in the textual ISA syntax.
//
// A minimal session:
//
//	a := &srv.Array{Name: "a", Elem: 4, Len: 1040}
//	x := &srv.Array{Name: "x", Elem: 4, Len: 1024}
//	loop := &srv.Loop{
//		Name: "update", Trip: 1024,
//		Body: []srv.Stmt{{
//			Dst: a, Idx: srv.Via(x, 1, 0), // a[x[i]] = ...
//			Val: srv.Add(srv.Load(a, srv.At(1, 0)), srv.Int(2)),
//		}},
//	}
//	m := srv.NewMemory()
//	loop.Bind(m)
//	// ... fill a and x through m ...
//	res, err := srv.Run(loop, m, srv.ModeSRV, srv.DefaultConfig())
//
// The dependence analysis (srv.Analyse) classifies the loop; ModeSVE is
// refused for anything not provably safe, while ModeSRV executes it
// speculatively with per-lane selective replay, exactly as in "Speculative
// Vectorisation with Selective Replay" (ISCA 2021).
package srv

import (
	"fmt"

	"srvsim/internal/compiler"
	"srvsim/internal/isa"
	"srvsim/internal/mem"
	"srvsim/internal/pipeline"
)

// Core loop-declaration types (see the compiler package for full docs).
type (
	// Loop is a countable inner loop over i in [0, Trip).
	Loop = compiler.Loop
	// Array declares one array operand.
	Array = compiler.Array
	// Stmt is one optionally guarded store statement.
	Stmt = compiler.Stmt
	// Mask guards a statement with a per-iteration comparison.
	Mask = compiler.Mask
	// Index is a subscript: affine or routed through an index array.
	Index = compiler.Index
	// Expr is a value expression evaluated per iteration.
	Expr = compiler.Expr
)

// Memory is the byte-addressable image programs execute against.
type Memory = mem.Image

// NewMemory returns an empty memory image.
func NewMemory() *Memory { return mem.NewImage() }

// Config holds the core's structural and latency parameters (Table I).
type Config = pipeline.Config

// DefaultConfig returns the paper's simulated core configuration.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Execution modes.
const (
	// ModeScalar compiles one element per iteration.
	ModeScalar = compiler.ModeScalar
	// ModeSVE compiles 16-lane vector code; only provably safe loops.
	ModeSVE = compiler.ModeSVE
	// ModeSRV compiles speculative 16-lane vector code bracketed by
	// srv_start/srv_end; legal for unknown-dependence loops.
	ModeSRV = compiler.ModeSRV
)

// Index constructors.

// At builds the affine subscript scale*i + offset.
func At(scale, offset int64) Index { return compiler.Affine(scale, offset) }

// Via builds the indirect subscript arr[scale*i + offset].
func Via(arr *Array, scale, offset int64) Index { return compiler.Via(arr, scale, offset) }

// Expression constructors.

// Int is an integer literal.
func Int(v int64) Expr { return compiler.Const{V: v} }

// IV is the induction-variable value i.
func IV() Expr { return compiler.IV{} }

// Load reads arr[idx].
func Load(arr *Array, idx Index) Expr { return compiler.Ref{Arr: arr, Idx: idx} }

// Add, Sub, Mul, Xor, And build arithmetic expressions.
func Add(l, r Expr) Expr { return compiler.Bin{Op: compiler.OpAdd, L: l, R: r} }
func Sub(l, r Expr) Expr { return compiler.Bin{Op: compiler.OpSub, L: l, R: r} }
func Mul(l, r Expr) Expr { return compiler.Bin{Op: compiler.OpMul, L: l, R: r} }
func Xor(l, r Expr) Expr { return compiler.Bin{Op: compiler.OpXor, L: l, R: r} }
func And(l, r Expr) Expr { return compiler.Bin{Op: compiler.OpAnd, L: l, R: r} }

// MulAdd builds the fused l*r + c.
func MulAdd(l, r, c Expr) Expr { return compiler.Bin{Op: compiler.OpMulAdd, L: l, R: r, C: c} }

// Guard builds a statement mask (if-converted under vector execution).
type CmpOp = compiler.CmpOp

// Comparison operators for Guard.
const (
	LT = compiler.CmpLT
	GE = compiler.CmpGE
	EQ = compiler.CmpEQ
	NE = compiler.CmpNE
)

// Guard returns a statement mask comparing l against r.
func Guard(op CmpOp, l, r Expr) *Mask { return &compiler.Mask{Op: op, L: l, R: r} }

// Verdict is the dependence-analysis classification.
type Verdict = compiler.Verdict

// Verdicts.
const (
	// Safe: provably free of short-distance cross-iteration dependences.
	Safe = compiler.VerdictSafe
	// Unknown: statically undecidable — the SRV candidates.
	Unknown = compiler.VerdictUnknown
	// Dependent: a short-distance dependence provably exists.
	Dependent = compiler.VerdictDependent
)

// Analyse classifies the loop's memory dependences.
func Analyse(l *Loop) Verdict { return compiler.Analyse(l).Verdict }

// EstimateSpeedup predicts the SRV-over-scalar speedup of the loop from its
// static shape using the compiler's profitability model — no simulation.
func EstimateSpeedup(l *Loop) float64 { return compiler.DefaultCostModel().Estimate(l) }

// Profitable reports whether the compiler's cost model would choose to
// SRV-vectorise the loop (estimate at or above the model's threshold).
func Profitable(l *Loop) bool { return compiler.DefaultCostModel().Profitable(l) }

// Result is one execution's outcome.
type Result struct {
	Cycles       int64
	Instructions int64
	IPC          float64

	// SRV activity (zero in scalar/SVE runs).
	Regions       int64
	Replays       int64
	ReplayedLanes int64
	RAW, WAR, WAW int64
	Fallbacks     int64
	BarrierCycles int64

	// Stats is the full gem5-style statistics report.
	Stats string
}

// resultFrom collects a finished pipeline's counters into a Result.
func resultFrom(p *pipeline.Pipeline) Result {
	st := p.Ctrl.Stats
	return Result{
		Cycles:        p.Stats.Cycles,
		Instructions:  p.Stats.Committed,
		IPC:           p.Stats.IPC(),
		Regions:       st.Regions,
		Replays:       st.Replays,
		ReplayedLanes: st.ReplayLanes,
		RAW:           st.RAWViol,
		WAR:           st.WARViol,
		WAW:           st.WAWViol,
		Fallbacks:     st.Fallbacks,
		BarrierCycles: p.Stats.BarrierCycles,
		Stats:         p.DumpStats(),
	}
}

// Run compiles the loop in the given mode and executes it on the simulated
// core against m (which the run mutates). The loop's arrays must have been
// bound with Loop.Bind(m) so callers could fill them first.
func Run(l *Loop, m *Memory, mode compiler.Mode, cfg Config) (Result, error) {
	c, err := compiler.Compile(l, m, mode)
	if err != nil {
		return Result{}, err
	}
	p := pipeline.New(cfg, c.Prog, m)
	if err := p.Run(); err != nil {
		return Result{}, err
	}
	return resultFrom(p), nil
}

// RunWithInterrupt is Run with an interrupt injected at the given cycle and
// a handler cost in cycles; SRV regions are suspended and resumed precisely
// per the paper's §III-D2.
func RunWithInterrupt(l *Loop, m *Memory, mode compiler.Mode, cfg Config, at, handlerCycles int64) (Result, error) {
	c, err := compiler.Compile(l, m, mode)
	if err != nil {
		return Result{}, err
	}
	p := pipeline.New(cfg, c.Prog, m)
	p.ScheduleInterrupt(at, handlerCycles)
	if err := p.Run(); err != nil {
		return Result{}, err
	}
	return resultFrom(p), nil
}

// Reference executes the loop with strict sequential semantics directly
// over m — the golden model every mode must match.
func Reference(l *Loop, m *Memory) { compiler.Eval(l, m) }

// Comparison reports a scalar-vs-SRV measurement over identical inputs.
type Comparison struct {
	Scalar  Result
	SRV     Result
	Speedup float64
}

// Compare runs the loop in scalar and SRV modes on identical copies of m
// (seeded by the caller before the call), verifies both against the
// sequential reference, and returns the cycle counts. m itself is not
// mutated.
func Compare(l *Loop, m *Memory, cfg Config) (Comparison, error) {
	var cmp Comparison
	ref := m.Clone()
	Reference(l, ref)

	ms := m.Clone()
	scalar, err := Run(l, ms, ModeScalar, cfg)
	if err != nil {
		return cmp, err
	}
	if addr, diff := ms.FirstDiff(ref); diff {
		return cmp, fmt.Errorf("srv: scalar execution diverges from the sequential reference at %#x", addr)
	}
	mv := m.Clone()
	vec, err := Run(l, mv, ModeSRV, cfg)
	if err != nil {
		return cmp, err
	}
	if addr, diff := mv.FirstDiff(ref); diff {
		return cmp, fmt.Errorf("srv: SRV execution diverges from the sequential reference at %#x", addr)
	}
	cmp.Scalar, cmp.SRV = scalar, vec
	cmp.Speedup = float64(scalar.Cycles) / float64(vec.Cycles)
	return cmp, nil
}

// Phase is one loop of a multi-phase program: a whole synthetic
// application is a sequence of loops, each compiled in its own mode.
type Phase = compiler.Phase

// RunProgram lowers several loops into one program executed in sequence
// (scalar phases interleaved with vector loops — a synthetic whole
// application) and runs it on the simulated core. Each phase is validated
// under the same legality rules as Run.
func RunProgram(phases []Phase, m *Memory, cfg Config) (Result, error) {
	prog, err := compiler.CompileProgram(phases, m)
	if err != nil {
		return Result{}, err
	}
	return Execute(prog, m, cfg)
}

// SLP: straight-line (non-loop) SRV regions, the extension paper §III-A
// mentions ("SRV could also be used to vectorise non-loop code with unknown
// dependences, through the SLP algorithm").

// Block is a straight-line code block of constant-subscript statements.
type Block = compiler.Block

// SLPStmt is one statement of a Block: Dst[DstIdx] = Val.
type SLPStmt = compiler.SLPStmt

// RunBlock compiles the block (ModeScalar or ModeSRV — the latter packs
// isomorphic statement runs into SRV regions) and executes it on the core.
func RunBlock(b *Block, m *Memory, mode compiler.Mode, cfg Config) (Result, error) {
	prog, err := compiler.CompileBlock(b, m, mode)
	if err != nil {
		return Result{}, err
	}
	return Execute(prog, m, cfg)
}

// ReferenceBlock executes the block sequentially (the golden model).
func ReferenceBlock(b *Block, m *Memory) { compiler.EvalBlock(b, m) }

// Program is a resolved machine program in the simulator ISA.
type Program = isa.Program

// Assemble parses the textual assembly syntax (see isa.Assemble).
func Assemble(src string) (*Program, error) { return isa.Assemble(src) }

// Disassemble renders a program in the canonical assembly syntax.
func Disassemble(p *Program) string { return isa.Disassemble(p) }

// Execute runs an assembled program on the simulated core.
func Execute(p *Program, m *Memory, cfg Config) (Result, error) {
	pl := pipeline.New(cfg, p, m)
	if err := pl.Run(); err != nil {
		return Result{}, err
	}
	return resultFrom(pl), nil
}
