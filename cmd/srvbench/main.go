// srvbench regenerates the paper's tables and figures on the simulator.
//
// Usage:
//
//	srvbench                 # everything (Table I, §II limit study, Figs 6-13)
//	srvbench -exp fig6       # one experiment
//	srvbench -exp limit -seed 11
package main

import (
	"flag"
	"fmt"
	"os"

	"srvsim/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|tab1|limit|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|costmodel|regions|sweep")
	seed := flag.Int64("seed", 7, "workload data seed")
	jsonOut := flag.Bool("json", false, "emit the full evaluation as JSON")
	flag.Parse()

	if *jsonOut {
		if err := harness.WriteJSON(*seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "srvbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "srvbench:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64) error {
	switch exp {
	case "all":
		return harness.RunAll(seed, os.Stdout)
	case "tab1":
		fmt.Print(harness.Table1())
		return nil
	case "limit":
		fmt.Print(harness.LimitStudy(seed))
		return nil
	case "fig13":
		rep, err := harness.Fig13(seed)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	case "sweep":
		rep, err := harness.Sweep(seed)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	case "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "costmodel", "regions":
		rs, err := harness.Measure(seed)
		if err != nil {
			return err
		}
		var rep harness.Report
		switch exp {
		case "fig6":
			rep = harness.Fig6(rs)
		case "fig7":
			rep = harness.Fig7(rs)
		case "fig8":
			rep = harness.Fig8(rs)
		case "fig9":
			rep = harness.Fig9(rs)
		case "fig10":
			rep = harness.Fig10(rs)
		case "fig11":
			rep = harness.Fig11(rs)
		case "fig12":
			rep = harness.Fig12(rs)
		case "costmodel":
			rep = harness.CostModelReport(rs)
		case "regions":
			rep = harness.RegionProfile(rs)
		}
		fmt.Print(rep)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
