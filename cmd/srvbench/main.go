// srvbench regenerates the paper's tables and figures on the simulator.
//
// Usage:
//
//	srvbench                 # everything (Table I, §II limit study, Figs 6-13)
//	srvbench -exp fig6       # one experiment
//	srvbench -exp limit -seed 11
//	srvbench -chaos 0.2      # fault-inject 20% of simulations (resilience drill)
//
// Failure handling: a failing simulation (panic, deadlock, cycle-budget
// blowout, divergence) is contained — its loop is dropped from the
// aggregates, re-run once with diagnostics for a crash artifact (-crashdir),
// and listed in the failure summary. The process then exits 3 ("completed
// with contained failures") rather than 1 (fatal). -failfast restores
// abort-on-first-error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"srvsim/internal/harness"
	"srvsim/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|tab1|limit|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|costmodel|regions|sweep")
	seed := flag.Int64("seed", 7, "workload data seed")
	jsonOut := flag.Bool("json", false, "emit the full evaluation as JSON")
	timing := flag.String("timing", "", "write per-benchmark wall-clock timings as JSON to this file")
	par := flag.Int("parallel", harness.Parallelism(), "max concurrent simulations (1 = serial)")
	failfast := flag.Bool("failfast", false, "abort on the first simulation failure instead of containing it")
	crashdir := flag.String("crashdir", "crashes", "directory for crash artifacts and diagnostic re-runs (empty = disabled)")
	simTimeout := flag.Duration("sim-timeout", 0, "wall-clock budget per simulation, e.g. 2m (0 = unbounded)")
	chaos := flag.Float64("chaos", 0, "fault-injection probability per simulation in [0,1] (resilience drill)")
	chaosSeed := flag.Int64("chaos-seed", 1, "decision seed for -chaos fault injection")
	flag.Parse()
	harness.SetParallelism(*par)
	harness.SetFailFast(*failfast)
	harness.SetCrashDir(*crashdir)
	harness.SetSimTimeout(*simTimeout)
	harness.SetChaos(*chaos, *chaosSeed)

	switch {
	case *timing != "":
		exit(writeTimings(*timing, *seed))
	case *jsonOut:
		exit(harness.WriteJSON(*seed, os.Stdout))
	default:
		exit(run(*exp, *seed))
	}
}

// exit maps the harness's error taxonomy onto process exit codes: 0 clean,
// 3 completed-with-contained-failures (partial results were produced), 1
// fatal (no usable results).
func exit(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "srvbench:", err)
	var fe *harness.FleetError
	if errors.As(err, &fe) {
		os.Exit(3)
	}
	os.Exit(1)
}

// benchTiming is one row of the -timing report: how long the simulator took
// in wall-clock terms to run every loop of one benchmark, plus the simulated
// cycle totals so cycles/sec can be derived.
type benchTiming struct {
	Bench        string  `json:"bench"`
	Loops        int     `json:"loops"`
	Failures     int     `json:"failures,omitempty"`
	WallMS       float64 `json:"wall_ms"`
	ScalarCycles int64   `json:"scalar_cycles"`
	SRVCycles    int64   `json:"srv_cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Speedup      float64 `json:"speedup"`
}

type timingReport struct {
	Seed        int64         `json:"seed"`
	Workers     int           `json:"workers"`
	NumCPU      int           `json:"num_cpu"`
	GoVersion   string        `json:"go_version"`
	TotalWallMS float64       `json:"total_wall_ms"`
	Benchmarks  []benchTiming `json:"benchmarks"`
}

// writeTimings wall-clocks RunBenchmark for every workload and writes the
// result (BENCH_harness.json when invoked per the Makefile) to path.
func writeTimings(path string, seed int64) error {
	rep := timingReport{
		Seed:      seed,
		Workers:   harness.Parallelism(),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
	var fails []*harness.SimError
	start := time.Now()
	for _, b := range workloads.All() {
		t0 := time.Now()
		br, err := harness.RunBenchmark(b, seed)
		if err != nil {
			return err
		}
		fails = append(fails, br.Failures...)
		wall := time.Since(t0)
		bt := benchTiming{
			Bench:    b.Name,
			Loops:    len(br.Loops),
			Failures: len(br.Failures),
			WallMS:   float64(wall.Microseconds()) / 1e3,
			Speedup:  br.Speedup,
		}
		for _, lr := range br.Loops {
			bt.ScalarCycles += lr.ScalarCycles
			bt.SRVCycles += lr.SRVCycles
		}
		if secs := wall.Seconds(); secs > 0 {
			bt.CyclesPerSec = float64(bt.ScalarCycles+bt.SRVCycles) / secs
		}
		rep.Benchmarks = append(rep.Benchmarks, bt)
	}
	rep.TotalWallMS = float64(time.Since(start).Microseconds()) / 1e3
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if len(fails) > 0 {
		fmt.Fprint(os.Stderr, harness.FailureSummary(fails))
		return &harness.FleetError{Failures: fails}
	}
	return nil
}

func run(exp string, seed int64) error {
	switch exp {
	case "all":
		return harness.RunAll(seed, os.Stdout)
	case "tab1":
		fmt.Print(harness.Table1())
		return nil
	case "limit":
		fmt.Print(harness.LimitStudy(seed))
		return nil
	case "fig13":
		rep, err := harness.Fig13(seed)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	case "sweep":
		rep, err := harness.Sweep(seed)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	case "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "costmodel", "regions":
		rs, err := harness.Measure(seed)
		if err != nil {
			return err
		}
		var rep harness.Report
		switch exp {
		case "fig6":
			rep = harness.Fig6(rs)
		case "fig7":
			rep = harness.Fig7(rs)
		case "fig8":
			rep = harness.Fig8(rs)
		case "fig9":
			rep = harness.Fig9(rs)
		case "fig10":
			rep = harness.Fig10(rs)
		case "fig11":
			rep = harness.Fig11(rs)
		case "fig12":
			rep = harness.Fig12(rs)
		case "costmodel":
			rep = harness.CostModelReport(rs)
		case "regions":
			rep = harness.RegionProfile(rs)
		}
		fmt.Print(rep)
		if fails := rs.Failures(); len(fails) > 0 {
			fmt.Print(harness.FailureSummary(fails))
			return &harness.FleetError{Failures: fails}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
