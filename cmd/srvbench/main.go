// srvbench regenerates the paper's tables and figures on the simulator.
//
// Usage:
//
//	srvbench                 # everything (Table I, §II limit study, Figs 6-13)
//	srvbench -exp fig6       # one experiment
//	srvbench -exp limit -seed 11
//	srvbench -chaos 0.2      # fault-inject 20% of simulations (resilience drill)
//	srvbench -timing out.json -benchmarks is,bzip2
//	srvbench -cpuprofile cpu.pprof -exp fig6
//	srvbench -remote http://localhost:8077   # farm every simulation to a srvd daemon
//	srvbench -remote http://localhost:8077 -net-chaos 0.2   # ...through a faulty network
//
// Failure handling: a failing simulation (panic, deadlock, cycle-budget
// blowout, divergence) is contained — its loop is dropped from the
// aggregates, re-run once with diagnostics for a crash artifact (-crashdir),
// and listed in the failure summary. The process then exits 3 ("completed
// with contained failures") rather than 1 (fatal). -failfast restores
// abort-on-first-error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"srvsim/internal/harness"
	"srvsim/internal/obsv"
	"srvsim/internal/serve"
)

// experiments is the -exp vocabulary, in help order.
var experiments = []string{
	"all", "tab1", "limit", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "costmodel", "regions", "sweep",
}

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(experiments, "|"))
	seed := flag.Int64("seed", 7, "workload data seed")
	jsonOut := flag.Bool("json", false, "emit the full evaluation as JSON")
	timing := flag.String("timing", "", "write per-benchmark wall-clock timings as JSON to this file")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset for -timing (default all)")
	par := flag.Int("parallel", harness.DefaultParallelism(), "max concurrent simulations (1 = serial)")
	remote := flag.String("remote", "", "execute simulations on a srvd daemon at this base URL (e.g. http://localhost:8077)")
	failfast := flag.Bool("failfast", false, "abort on the first simulation failure instead of containing it")
	crashdir := flag.String("crashdir", "crashes", "directory for crash artifacts and diagnostic re-runs (empty = disabled)")
	simTimeout := flag.Duration("sim-timeout", 0, "wall-clock budget per simulation, e.g. 2m (0 = unbounded)")
	tickCore := flag.Bool("tick-core", false, "run simulations on the per-cycle reference tick core instead of the event-driven scheduler (recorded in -timing reports)")
	chaos := flag.Float64("chaos", 0, "fault-injection probability per simulation in [0,1] (resilience drill)")
	chaosSeed := flag.Int64("chaos-seed", 1, "decision seed for -chaos fault injection")
	netChaos := flag.Float64("net-chaos", 0, "with -remote: drop/delay/black-hole this fraction of HTTP calls in [0,1] (network resilience drill)")
	netChaosSeed := flag.Int64("net-chaos-seed", 1, "decision seed for -net-chaos fault injection")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	obs = obsv.RegisterObsFlags(flag.CommandLine, "trace-out", "metrics-out")
	flag.Parse()
	harness.SetParallelism(*par)
	harness.SetFailFast(*failfast)
	harness.SetCrashDir(*crashdir)
	harness.SetSimTimeout(*simTimeout)
	harness.SetRefTickCore(*tickCore)
	harness.SetChaos(*chaos, *chaosSeed)
	if *remote != "" {
		// Every harness.Run in this process — and therefore every figure —
		// now executes on the daemon; the local pool only fans out requests.
		// The client retries transient failures by default, so -net-chaos can
		// sabotage the wire and the run must still come back bit-identical.
		var opts []serve.ClientOption
		if *netChaos > 0 {
			opts = append(opts, serve.WithTransport(&serve.ChaosTransport{
				Seed: *netChaosSeed,
				P:    *netChaos,
			}))
		}
		harness.SetExecutor(serve.NewClient(*remote, opts...).Executor())
	} else if *netChaos > 0 {
		exit(fmt.Errorf("-net-chaos requires -remote (it faults the HTTP transport)"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			exit(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			exit(err)
		}
		defer pprof.StopCPUProfile()
	}

	harness.ResetFleet()
	if obs.TraceOut != "" {
		fleetSpans = obsv.NewSpanRecorder(0)
		fleetRoot = harness.SetSpanRecorder(fleetSpans)
		fleetStart = time.Now()
	}
	var err error
	switch {
	case *timing != "":
		var subset []string
		if *benches != "" {
			subset = strings.Split(*benches, ",")
		}
		err = harness.WriteTimings(*timing, *seed, subset)
	case *jsonOut:
		err = harness.WriteJSON(*seed, os.Stdout)
	default:
		err = run(*exp, *seed)
	}
	if *memprofile != "" {
		if perr := writeHeapProfile(*memprofile); perr != nil && err == nil {
			err = perr
		}
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile() // idempotent; flush before a non-zero exit
	}
	exit(err)
}

// Fleet observability state, written by exit() so every termination path —
// clean, contained failures (exit 3), fatal (exit 1) — emits it.
var (
	obs        *obsv.ObsFlags
	fleetSpans *obsv.SpanRecorder
	fleetRoot  obsv.SpanContext
	fleetStart time.Time
)

// writeObsArtifacts closes the fleet root span and writes the requested
// observability outputs: -trace-out gets a Perfetto view of the fleet (one
// leaf span per simulation under one root), -metrics-out the fleet registry
// as JSON ("-" = stdout).
func writeObsArtifacts() error {
	if fleetSpans != nil {
		fleetSpans.Record(obsv.Span{
			Trace: fleetRoot.Trace, ID: fleetRoot.Span, Name: "srvbench",
			Start: fleetStart, End: time.Now(),
		})
	}
	emit := func(path string, write func(*os.File) error) error {
		if path == "-" {
			return write(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	// fleetSpans is nil when exit() fires before the fleet was set up (flag
	// validation errors); there is nothing to write then.
	if obs.TraceOut != "" && fleetSpans != nil {
		if err := emit(obs.TraceOut, func(f *os.File) error { return fleetSpans.WriteTrace(f) }); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	if obs.MetricsOut != "" {
		if err := emit(obs.MetricsOut, func(f *os.File) error { return harness.FleetRegistry().WriteJSON(f) }); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	return nil
}

// writeHeapProfile snapshots the heap (after a GC, so live objects dominate)
// into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exit maps the harness's error taxonomy onto process exit codes: 0 clean,
// 3 completed-with-contained-failures (partial results were produced), 1
// fatal (no usable results). The fleet summary and observability artifacts
// are emitted here, on every path — a fatal run's partial fleet throughput
// and trace are exactly what the post-mortem needs.
func exit(err error) {
	if fs := harness.SnapshotFleet(); fs.Simulations > 0 {
		fmt.Fprint(os.Stderr, fs)
	}
	if oerr := writeObsArtifacts(); oerr != nil {
		fmt.Fprintln(os.Stderr, "srvbench:", oerr)
		if err == nil {
			err = oerr
		}
	}
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "srvbench:", err)
	var fe *harness.FleetError
	if errors.As(err, &fe) {
		os.Exit(3)
	}
	os.Exit(1)
}

func run(exp string, seed int64) error {
	switch exp {
	case "all":
		return harness.RunAll(seed, os.Stdout)
	case "tab1":
		fmt.Print(harness.Table1())
		return nil
	case "limit":
		fmt.Print(harness.LimitStudy(seed))
		return nil
	case "fig13":
		rep, err := harness.Fig13(seed)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	case "sweep":
		rep, err := harness.Sweep(seed)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		return nil
	case "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "costmodel", "regions":
		rs, err := harness.Measure(seed)
		if err != nil {
			return err
		}
		var rep harness.Report
		switch exp {
		case "fig6":
			rep = harness.Fig6(rs)
		case "fig7":
			rep = harness.Fig7(rs)
		case "fig8":
			rep = harness.Fig8(rs)
		case "fig9":
			rep = harness.Fig9(rs)
		case "fig10":
			rep = harness.Fig10(rs)
		case "fig11":
			rep = harness.Fig11(rs)
		case "fig12":
			rep = harness.Fig12(rs)
		case "costmodel":
			rep = harness.CostModelReport(rs)
		case "regions":
			rep = harness.RegionProfile(rs)
		}
		fmt.Print(rep)
		if fails := rs.Failures(); len(fails) > 0 {
			fmt.Print(harness.FailureSummary(fails))
			return &harness.FleetError{Failures: fails}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (valid: %s)", exp, strings.Join(experiments, ", "))
	}
}
