// srvfuzz runs the differential fuzzer as a standalone tool: random
// unknown-dependence loops are generated, compiled in scalar and SRV form,
// executed on the functional interpreter and the cycle-level pipeline, and
// every result is compared against the sequential reference evaluator.
// Any divergence is a bug in disambiguation, forwarding, replay, merging
// or recovery.
//
// Each trial draws from its own RNG stream derived from (seed, trial), so a
// single failing trial can be replayed in isolation: with -keep-going a
// failure writes a crash artifact (replayable via `srvsim -repro`) and the
// campaign continues, exiting 3 with a summary at the end. Without it the
// first failure stops the run (exit 1), as before.
//
// Usage:
//
//	srvfuzz -trials 500 -seed 1
//	srvfuzz -trials 100 -interrupts        # inject interrupts mid-run
//	srvfuzz -trials 300 -affine            # fuzz the dependence verdicts too
//	srvfuzz -trials 500 -keep-going        # contain failures, write artifacts
package main

import (
	"flag"
	"fmt"
	"os"

	"srvsim/internal/harness"
)

func main() {
	trials := flag.Int("trials", 200, "number of random loops")
	seed := flag.Int64("seed", 1, "fuzzer seed")
	interrupts := flag.Bool("interrupts", false, "inject an interrupt mid-run")
	affine := flag.Bool("affine", false, "generate affine loops and fuzz the dependence verdicts (SVE leg included)")
	verbose := flag.Bool("v", false, "print each trial's shape")
	keepGoing := flag.Bool("keep-going", false, "contain failures: write a crash artifact and continue fuzzing")
	crashdir := flag.String("crashdir", "crashes", "directory for -keep-going crash artifacts")
	flag.Parse()

	replays, regions := int64(0), int64(0)
	var fails []*harness.SimError
	for trial := 0; trial < *trials; trial++ {
		res, err := harness.RunFuzzTrial(*seed, trial, *affine, *interrupts)
		if err != nil {
			se := harness.AsSimError(err)
			fmt.Fprintf(os.Stderr, "srvfuzz: %v\n", se)
			if !*keepGoing {
				os.Exit(1)
			}
			if path, werr := harness.WriteFuzzArtifact(*crashdir, *seed, trial, *affine, *interrupts, se); werr != nil {
				fmt.Fprintf(os.Stderr, "srvfuzz: writing crash artifact: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "srvfuzz: crash artifact written to %s (replay: srvsim -repro %s)\n", path, path)
			}
			fails = append(fails, se)
			continue
		}
		replays += res.Replays
		regions += res.Regions
		if *verbose {
			fmt.Printf("trial %4d ok: trip=%d down=%v stmts=%d verdict=%v\n",
				trial, res.Trip, res.Down, res.Stmts, res.Verdict)
		}
	}
	if len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "srvfuzz: %d of %d trials FAILED (%d regions, %d replay rounds, interrupts=%v):\n",
			len(fails), *trials, regions, replays, *interrupts)
		for _, se := range fails {
			loc := se.Artifact
			if loc == "" {
				loc = "no artifact"
			}
			fmt.Fprintf(os.Stderr, "  %v (%s)\n", se, loc)
		}
		os.Exit(3)
	}
	fmt.Printf("srvfuzz: %d trials passed (%d regions, %d replay rounds, interrupts=%v)\n",
		*trials, regions, replays, *interrupts)
}
