// srvfuzz runs the differential fuzzer as a standalone tool: random
// unknown-dependence loops are generated, compiled in scalar and SRV form,
// executed on the functional interpreter and the cycle-level pipeline, and
// every result is compared against the sequential reference evaluator.
// Any divergence is a bug in disambiguation, forwarding, replay, merging
// or recovery.
//
// Usage:
//
//	srvfuzz -trials 500 -seed 1
//	srvfuzz -trials 100 -interrupts        # inject interrupts mid-run
//	srvfuzz -trials 300 -affine            # fuzz the dependence verdicts too
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"srvsim/internal/compiler"
	"srvsim/internal/isa"
	"srvsim/internal/mem"
	"srvsim/internal/pipeline"
)

func main() {
	trials := flag.Int("trials", 200, "number of random loops")
	seed := flag.Int64("seed", 1, "fuzzer seed")
	interrupts := flag.Bool("interrupts", false, "inject an interrupt mid-run")
	affine := flag.Bool("affine", false, "generate affine loops and fuzz the dependence verdicts (SVE leg included)")
	verbose := flag.Bool("v", false, "print each trial's shape")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	cfg := pipeline.DefaultConfig()
	cfg.MaxCycles = 50_000_000
	replays, regions := int64(0), int64(0)
	for trial := 0; trial < *trials; trial++ {
		l := compiler.RandomLoop(rng)
		if *affine {
			l = compiler.RandomAffineLoop(rng)
		}
		im := mem.NewImage()
		compiler.SeedRandomLoop(l, im, rng)
		ref := im.Clone()
		compiler.Eval(l, ref)
		verdict := compiler.Analyse(l).Verdict

		// Scalar on the pipeline.
		imS := im.Clone()
		cs, err := compiler.Compile(l, imS, compiler.ModeScalar)
		fatal(trial, "scalar compile", err)
		ps := pipeline.New(cfg, cs.Prog, imS)
		fatal(trial, "scalar run", ps.Run())
		diverge(trial, "scalar pipeline", imS, ref)

		// Loops the analysis proves safe must also run correctly under
		// plain SVE (verdict soundness).
		if verdict == compiler.VerdictSafe {
			imV := im.Clone()
			cs2, err := compiler.Compile(l, imV, compiler.ModeSVE)
			fatal(trial, "sve compile", err)
			pv2 := pipeline.New(cfg, cs2.Prog, imV)
			fatal(trial, "sve run", pv2.Run())
			diverge(trial, "SVE pipeline", imV, ref)
		}

		if verdict != compiler.VerdictDependent {
			// SRV on the interpreter.
			imI := im.Clone()
			cv, err := compiler.Compile(l, imI, compiler.ModeSRV)
			fatal(trial, "srv compile", err)
			ip := isa.NewInterp(cv.Prog, imI)
			fatal(trial, "srv interp", ip.Run(200_000_000))
			diverge(trial, "SRV interpreter", imI, ref)

			// SRV on the pipeline, optionally with an interrupt.
			imP := im.Clone()
			pv := pipeline.New(cfg, cv.Prog, imP)
			if *interrupts {
				pv.ScheduleInterrupt(int64(10+rng.Intn(400)), int64(20+rng.Intn(60)))
			}
			fatal(trial, "srv pipeline", pv.Run())
			diverge(trial, "SRV pipeline", imP, ref)
			replays += pv.Ctrl.Stats.Replays
			regions += pv.Ctrl.Stats.Regions
		}

		if *verbose {
			fmt.Printf("trial %4d ok: trip=%d down=%v stmts=%d verdict=%v\n",
				trial, l.Trip, l.Down, len(l.Body), verdict)
		}
	}
	fmt.Printf("srvfuzz: %d trials passed (%d regions, %d replay rounds, interrupts=%v)\n",
		*trials, regions, replays, *interrupts)
}

func fatal(trial int, what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "srvfuzz: trial %d %s: %v\n", trial, what, err)
		os.Exit(1)
	}
}

func diverge(trial int, who string, got, want *mem.Image) {
	if addr, diff := got.FirstDiff(want); diff {
		fmt.Fprintf(os.Stderr, "srvfuzz: trial %d: %s diverges from the sequential reference at %#x\n",
			trial, who, addr)
		os.Exit(1)
	}
}
