// srvsim runs one workload loop on the cycle simulator under a chosen
// execution strategy and prints the pipeline statistics.
//
// Usage:
//
//	srvsim -list                     # list benchmarks and loops
//	srvsim -bench is                 # run all loops of a benchmark under SRV
//	srvsim -bench is -loop 0 -mode scalar
//	srvsim -bench bzip2 -loop 0 -dis # disassemble the compiled program
//	srvsim -file prog.s              # assemble and run a .s file
//	                                 # (".data addr, elem, v0, v1, ..." sets memory)
//	srvsim -repro crashes/x.json     # replay a crash artifact with diagnostics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"srvsim/internal/compiler"
	"srvsim/internal/harness"
	"srvsim/internal/isa"
	"srvsim/internal/mem"
	"srvsim/internal/obsv"
	"srvsim/internal/pipeline"
	"srvsim/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list benchmarks and loops")
	bench := flag.String("bench", "", "benchmark name")
	loopIdx := flag.Int("loop", -1, "loop index (-1 = all)")
	mode := flag.String("mode", "srv", "execution mode: scalar|srv|compare")
	seed := flag.Int64("seed", 7, "workload data seed")
	dis := flag.Bool("dis", false, "print the compiled program")
	trace := flag.Bool("trace", false, "print every executed instruction (cycle, seq, pc, op)")
	file := flag.String("file", "", "assemble and run a .s program file")
	statsFlag := flag.Bool("stats", false, "dump the full gem5-style statistics report")
	pv := flag.Int("pipeview", 0, "render a stage timeline for the first N committed instructions")
	regions := flag.Bool("regions", false, "print the SRV region-duration distribution")
	par := flag.Int("parallel", harness.DefaultParallelism(), "max concurrent simulations (1 = serial)")
	repro := flag.String("repro", "", "replay a crash artifact (JSON written by the harness or srvfuzz)")
	obs = obsv.RegisterObsFlags(flag.CommandLine,
		"trace-out", "metrics-out", "sample-out", "sample-every", "replay-profile")
	flag.Parse()
	dumpStats = *statsFlag
	pipeview = *pv
	showRegions = *regions
	pipeline.DebugTrace = *trace
	harness.SetParallelism(*par)

	if *repro != "" {
		if err := harness.ReplayArtifact(*repro, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "srvsim:", err)
			os.Exit(1)
		}
		return
	}
	if *file != "" {
		if err := runFile(*file); err != nil {
			fmt.Fprintln(os.Stderr, "srvsim:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		cm := compiler.DefaultCostModel()
		for _, b := range workloads.All() {
			fmt.Printf("%-10s (%s)\n", b.Name, b.Suite)
			for i, ls := range b.Loops {
				loop := ls.Shape.Build()
				total, gs := loop.MemAccessCount()
				fmt.Printf("  [%d] %-16s trip=%-5d accesses=%d (%d gather/scatter) weight=%.2f est=%.1fx\n",
					i, ls.Shape.Name, ls.Shape.Trip, total, gs, ls.Weight, cm.Estimate(loop))
			}
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "srvsim: -bench required (or -list)")
		os.Exit(1)
	}
	b, ok := workloads.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "srvsim: unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	if *mode == "compare" {
		for i, ls := range b.Loops {
			if *loopIdx >= 0 && i != *loopIdx {
				continue
			}
			lr, err := harness.RunLoop(b.Name, ls, *seed+int64(i))
			if err != nil {
				fmt.Fprintln(os.Stderr, "srvsim:", err)
				os.Exit(1)
			}
			fmt.Printf("%s/%s: scalar=%d srv=%d speedup=%.2fx replays=%d RAW=%d WAR=%d WAW=%d barrier=%.2f%%\n",
				b.Name, ls.Shape.Name, lr.ScalarCycles, lr.SRVCycles, lr.Speedup,
				lr.ReplayRounds, lr.RAW, lr.WAR, lr.WAW, lr.BarrierFrac*100)
		}
		return
	}
	var m compiler.Mode
	switch *mode {
	case "scalar":
		m = compiler.ModeScalar
	case "srv":
		m = compiler.ModeSRV
	default:
		fmt.Fprintf(os.Stderr, "srvsim: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	multi := *loopIdx < 0 && len(b.Loops) > 1
	for i, ls := range b.Loops {
		if *loopIdx >= 0 && i != *loopIdx {
			continue
		}
		if multi {
			obsTag = fmt.Sprintf("_%s_%d", b.Name, i)
		}
		if err := runOne(b.Name, ls, m, *seed+int64(i), *dis); err != nil {
			fmt.Fprintln(os.Stderr, "srvsim:", err)
			os.Exit(1)
		}
	}
}

// obsTag distinguishes observability output files when one invocation runs
// several loops ("" when a single loop runs).
var obsTag string

// tagPath inserts obsTag before the file extension of path.
func tagPath(path string) string {
	if obsTag == "" {
		return path
	}
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + obsTag + ext
}

// writeObsFile writes one observability artifact via emit, honouring "-" as
// stdout.
func writeObsFile(path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(tagPath(path))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runFile assembles and runs a standalone .s program.
func runFile(path string) error {
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, data, err := isa.AssembleWithData(string(srcBytes))
	if err != nil {
		return err
	}
	im := mem.NewImage()
	for _, di := range data {
		for i, v := range di.Values {
			im.WriteInt(di.Addr+uint64(i*di.Elem), di.Elem, v)
		}
	}
	p := pipeline.New(pipeline.DefaultConfig(), prog, im)
	if err := p.Run(); err != nil {
		return err
	}
	st := p.Ctrl.Stats
	fmt.Printf("%s: cycles=%d insts=%d IPC=%.2f regions=%d replays=%d RAW=%d WAR=%d WAW=%d\n",
		path, p.Stats.Cycles, p.Stats.Committed, p.Stats.IPC(),
		st.Regions, st.Replays, st.RAWViol, st.WARViol, st.WAWViol)
	return nil
}

var (
	dumpStats   bool
	pipeview    int
	showRegions bool
	obs         *obsv.ObsFlags
)

func runOne(bench string, ls workloads.LoopSpec, mode compiler.Mode, seed int64, dis bool) error {
	l, im := ls.Instantiate(seed)
	c, err := compiler.Compile(l, im, mode)
	if err != nil {
		return err
	}
	if dis {
		fmt.Printf("--- %s/%s (%v) ---\n%s\n", bench, ls.Shape.Name, mode, c.Prog)
	}
	p := pipeline.New(pipeline.DefaultConfig(), c.Prog, im)
	if pipeview > 0 {
		p.EnableTimeline()
	}
	if obs.TraceOut != "" {
		p.AttachTracer(obsv.NewTracer())
	}
	if obs.SampleEvery > 0 {
		p.EnableSampling(obs.SampleEvery)
	}
	if obs.ReplayProfile {
		p.EnableReplayProfile()
	}
	if err := p.Run(); err != nil {
		return err
	}
	fmt.Printf("%s/%s [%v]: cycles=%d insts=%d IPC=%.2f", bench, ls.Shape.Name, mode,
		p.Stats.Cycles, p.Stats.Committed, p.Stats.IPC())
	if mode == compiler.ModeSRV {
		st := p.Ctrl.Stats
		fmt.Printf(" regions=%d replays=%d RAW=%d WAR=%d WAW=%d fallbacks=%d barrier=%d",
			st.Regions, st.Replays, st.RAWViol, st.WARViol, st.WAWViol, st.Fallbacks,
			p.Stats.BarrierCycles)
	}
	fmt.Printf(" L1miss=%d L2miss=%d\n", p.Hier.L1.Stats.Misses, p.Hier.L2.Stats.Misses)
	if dumpStats {
		fmt.Println(p.DumpStats())
	}
	if pipeview > 0 {
		fmt.Print(p.RenderTimeline(0, pipeview))
	}
	if showRegions {
		printRegionDurations(p.RegionDurations())
	}
	return writeObservability(p)
}

// writeObservability exports the run's trace, cycle samples, metrics
// registry and per-PC replay profile as requested by the shared
// observability flags.
func writeObservability(p *pipeline.Pipeline) error {
	if t := p.Tracer(); t != nil {
		if err := writeObsFile(obs.TraceOut, t.WriteJSON); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if t.Dropped() > 0 {
			fmt.Fprintf(os.Stderr, "srvsim: trace buffer full, %d events dropped\n", t.Dropped())
		}
	}
	if s := p.Samples(); s != nil {
		emit := s.WriteCSV
		if filepath.Ext(obs.SampleOut) == ".json" {
			emit = s.WriteJSON
		}
		out := obs.SampleOut
		if out == "" {
			out = "-"
		}
		if err := writeObsFile(out, emit); err != nil {
			return fmt.Errorf("sample-out: %w", err)
		}
	}
	if obs.MetricsOut != "" {
		if err := writeObsFile(obs.MetricsOut, p.Metrics().WriteJSON); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	if p.ReplayProfiling() {
		fmt.Print(p.RenderReplayProfile())
	}
	return nil
}

// printRegionDurations summarises the per-region cycle counts of a run.
func printRegionDurations(durs []int64) {
	if len(durs) == 0 {
		fmt.Println("regions: none recorded")
		return
	}
	min, max, sum := durs[0], durs[0], int64(0)
	for _, d := range durs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	fmt.Printf("regions: %d recorded, duration min=%d mean=%.1f max=%d cycles\n",
		len(durs), min, float64(sum)/float64(len(durs)), max)
	// Compact histogram over eight buckets.
	span := max - min + 1
	var buckets [8]int
	for _, d := range durs {
		buckets[int((d-min)*8/span)]++
	}
	for i, n := range buckets {
		lo := min + int64(i)*span/8
		hi := min + int64(i+1)*span/8 - 1
		if hi < lo {
			hi = lo
		}
		bar := ""
		for j := 0; j < n*40/len(durs); j++ {
			bar += "#"
		}
		fmt.Printf("  %4d..%-4d %5d %s\n", lo, hi, n, bar)
	}
}
