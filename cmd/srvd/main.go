// srvd is the long-running simulation daemon: it serves the versioned
// /v1 HTTP/JSON API of internal/serve, executing harness.Requests on a
// bounded job queue and answering repeated submissions byte-identically from
// a content-addressed result cache.
//
// Usage:
//
//	srvd -addr :8077
//	srvd -addr :8077 -parallel 8 -queue 128 -cache 512 -job-timeout 5m
//	srvd -addr :8077 -log-format json -pprof
//	srvd -smoke              # in-process self-test used by `make serve-smoke`
//	srvd -obs-smoke          # observability self-test used by `make obs-smoke`
//
// Submit work with curl (see "Service mode" in the README) or point a CLI at
// it: `srvbench -remote http://localhost:8077`.
//
// Every log line about a job carries its trace_id, the same ID stamped on
// the W3C traceparent header and returned in the job status, so one grep
// correlates client spans, server logs and GET /v1/trace output.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"srvsim/internal/harness"
	"srvsim/internal/obsv"
	"srvsim/internal/serve"
	"srvsim/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	nodeID := flag.String("node-id", "", "fleet node name stamped on health and job statuses (empty = standalone)")
	par := flag.Int("parallel", harness.DefaultParallelism(), "max concurrent simulations per job (1 = serial)")
	jobWorkers := flag.Int("job-workers", 2, "jobs executed concurrently (each fans out over -parallel workers)")
	queueSize := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	cacheSize := flag.Int("cache", 256, "max cached results (LRU; negative disables the cache)")
	jobTimeout := flag.Duration("job-timeout", 0, "wall-clock budget per job, e.g. 5m (0 = unbounded)")
	journalDir := flag.String("journal", "", "directory for the durable job journal (empty = no journal; jobs do not survive restarts)")
	ckptEvery := flag.Int64("checkpoint-every", 100000, "journal a machine checkpoint every N simulated cycles per running simulation, so killed or preempted jobs resume mid-run on restart (0 = off; requires -journal)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "budget for finishing in-flight jobs on SIGTERM/SIGINT before they are cancelled")
	queueDeadline := flag.Duration("queue-deadline", 0, "shed submissions with 429 when the predicted queue wait exceeds this (0 = never shed)")
	maxInflight := flag.Int64("max-inflight-bytes", serve.DefaultMaxInflightBytes, "largest accepted request body in bytes (0 = unbounded)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "additionally bound the result cache by total payload bytes (0 = entry count only)")
	tenantQueue := flag.Int("tenant-queue", 0, "max queued jobs per tenant before that tenant's submissions get 429 (0 = whole-queue bound only)")
	tenantRate := flag.Float64("tenant-rate", 0, "uniform per-tenant submissions/sec quota (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "uniform per-tenant submission burst absorbed on top of -tenant-rate")
	tenantBytes := flag.Int64("tenant-inflight-bytes", 0, "uniform per-tenant cap on admitted-but-unfinished body bytes (0 = unlimited)")
	brownoutHW := flag.Duration("brownout-highwater", 0, "predicted queue wait that starts brownout shedding, e.g. 2s (0 = never)")
	tenantOverrides := map[string]serve.TenantLimits{}
	flag.Func("tenant", "per-tenant quota override, repeatable: name:weight=4,rate=2,burst=8,bytes=1048576 (name \"default\" = requests without "+serve.HeaderTenant+")", func(spec string) error {
		name, l, err := serve.ParseTenantOverride(spec)
		if err != nil {
			return err
		}
		tenantOverrides[name] = l
		return nil
	})
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log line format: text|json")
	pprofFlag := flag.Bool("pprof", false, "expose Go runtime profiling at /debug/pprof/ (CPU, heap, goroutine, ...)")
	smoke := flag.Bool("smoke", false, "run the in-process smoke test (submit, wait, assert cache hit) and exit")
	obsSmoke := flag.Bool("obs-smoke", false, "run the in-process observability smoke test (scrape prometheus, trace one job end to end) and exit")
	flag.Parse()

	logger, err := buildLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srvd:", err)
		os.Exit(1)
	}
	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	harness.SetParallelism(*par)
	srv, err := serve.New(serve.Config{
		NodeID:           *nodeID,
		Workers:          *jobWorkers,
		QueueSize:        *queueSize,
		CacheSize:        *cacheSize,
		JobTimeout:       *jobTimeout,
		JournalDir:       *journalDir,
		CheckpointEvery:  *ckptEvery,
		QueueDeadline:    *queueDeadline,
		MaxInflightBytes: *maxInflight,
		CacheMaxBytes:    *cacheMaxBytes,
		TenantQueueSize:  *tenantQueue,
		TenantQuota: serve.TenantLimits{
			SubmitRate:       *tenantRate,
			SubmitBurst:      *tenantBurst,
			MaxInflightBytes: *tenantBytes,
		},
		TenantQuotas:      tenantOverrides,
		BrownoutHighWater: *brownoutHW,
		Logger:            logger,
	})
	if err != nil {
		fatal(err)
	}
	srv.Start()

	if *smoke {
		if err := runSmoke(srv); err != nil {
			fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("serve-smoke: ok")
		return
	}
	if *obsSmoke {
		if err := runObsSmoke(srv); err != nil {
			fmt.Fprintln(os.Stderr, "obs-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("obs-smoke: ok")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: withPprof(srv.Handler(), *pprofFlag)}
	logger.Info("listening", "addr", ln.Addr().String(),
		"version", harness.CodeVersion, "schema", harness.SchemaVersion,
		"job_workers", *jobWorkers, "queue", *queueSize, "cache", *cacheSize,
		"pprof", *pprofFlag)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (submissions get 503 + Retry-After),
	// finish or cancel in-flight jobs within the budget, journal their final
	// states, then stop serving HTTP. Exit 0 either way — a drain that had to
	// cancel still left a consistent journal for the next process to replay.
	logger.Info("signal received, draining", "budget", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Warn("drain cancelled in-flight jobs", "err", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	logger.Info("drained")
}

// buildLogger constructs the process logger from the -log-level/-log-format
// flags. The server adds trace_id/job fields to every job-scoped line.
func buildLogger(w *os.File, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

// withPprof optionally mounts the Go runtime profiling endpoints next to the
// API. The handlers are attached explicitly — srvd never serves
// http.DefaultServeMux, so nothing is exposed without the flag.
func withPprof(api http.Handler, enabled bool) http.Handler {
	if !enabled {
		return api
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", api)
	return mux
}

// runSmoke exercises the full service loop against a loopback listener: the
// daemon must come up healthy, execute one small simulation, and answer the
// identical resubmission byte-identically from cache. CI runs this as
// `make serve-smoke`.
func runSmoke(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := serve.NewClient("http://" + ln.Addr().String())

	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz reports %q", h.Status)
	}

	b := workloads.All()[0]
	req := harness.Request{Mode: harness.ModeLoop, Bench: b.Name, Seed: 7}
	first, err := c.Do(ctx, req)
	if err != nil {
		return fmt.Errorf("first submission: %w", err)
	}
	if first.Loop == nil {
		return fmt.Errorf("first submission returned no loop payload")
	}
	firstBytes, err := json.Marshal(first)
	if err != nil {
		return err
	}

	st, err := c.Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("resubmission: %w", err)
	}
	if !st.Cached {
		return fmt.Errorf("resubmission was not a cache hit (job %s, state %s)", st.ID, st.State)
	}
	var second harness.Result
	if err := json.Unmarshal(st.Result, &second); err != nil {
		return err
	}
	secondBytes, err := json.Marshal(second)
	if err != nil {
		return err
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		return fmt.Errorf("cached result differs from original")
	}
	if m := srv.Registry().Lookup("serve.cache.hits"); m == nil || m.Int() != 1 {
		return fmt.Errorf("expected exactly one recorded cache hit")
	}
	return nil
}

// runObsSmoke exercises the observability surface end to end against a
// loopback listener: one benchmark job must produce a single trace whose
// client, admission, queue-wait, execute and progress spans all share the
// client's TraceID, and the Prometheus exposition must parse and account for
// the job. CI runs this as `make obs-smoke`.
func runObsSmoke(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	base := "http://" + ln.Addr().String()
	rec := obsv.NewSpanRecorder(0)
	c := serve.NewClient(base, serve.WithSpanRecorder(rec))

	// One traced benchmark job (benchmark mode streams progress events, which
	// must surface as child spans on the server side).
	b := workloads.All()[0]
	if _, err := c.Do(ctx, harness.Request{Mode: harness.ModeBenchmark, Bench: b.Name, Seed: 7}); err != nil {
		return fmt.Errorf("traced job: %w", err)
	}
	client := rec.Snapshot()
	if len(client) != 1 {
		return fmt.Errorf("expected 1 client span, recorder holds %d", len(client))
	}
	trace := client[0].Trace.String()

	// The server's half of the trace, through the public endpoint.
	resp, err := http.Get(base + "/v1/trace")
	if err != nil {
		return fmt.Errorf("GET /v1/trace: %w", err)
	}
	defer resp.Body.Close()
	stages := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var span struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			return fmt.Errorf("/v1/trace line not JSON: %w", err)
		}
		if span.TraceID != trace {
			return fmt.Errorf("span %q carries trace %s, want %s (one job must mean one trace)", span.Name, span.TraceID, trace)
		}
		name := span.Name
		if strings.HasPrefix(name, "progress:") {
			name = "progress"
		}
		stages[name]++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, stage := range []string{"admission", "queue-wait", "execute", "progress"} {
		if stages[stage] == 0 {
			return fmt.Errorf("no %q span in /v1/trace (got %v)", stage, stages)
		}
	}

	// Prometheus exposition: correct content type, parseable by the strict
	// scrape parser, and accounting for the finished job.
	resp, err = http.Get(base + "/v1/metrics?format=prometheus")
	if err != nil {
		return fmt.Errorf("GET /v1/metrics?format=prometheus: %w", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obsv.PromContentType {
		return fmt.Errorf("prometheus content type %q, want %q", ct, obsv.PromContentType)
	}
	samples, err := obsv.ParsePrometheus(resp.Body)
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if len(s.Labels) == 0 {
			byName[s.Name] = s.Value
		}
	}
	if byName["serve_jobs_done"] < 1 {
		return fmt.Errorf("serve_jobs_done = %v, want >= 1", byName["serve_jobs_done"])
	}
	if byName["serve_e2e_latency_ms_count"] < 1 {
		return fmt.Errorf("serve_e2e_latency_ms_count = %v, want >= 1", byName["serve_e2e_latency_ms_count"])
	}
	if _, ok := byName["serve_trace_spans"]; !ok {
		return fmt.Errorf("serve_trace_spans missing from exposition")
	}
	return nil
}
