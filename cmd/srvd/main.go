// srvd is the long-running simulation daemon: it serves the versioned
// /v1 HTTP/JSON API of internal/serve, executing harness.Requests on a
// bounded job queue and answering repeated submissions byte-identically from
// a content-addressed result cache.
//
// Usage:
//
//	srvd -addr :8077
//	srvd -addr :8077 -parallel 8 -queue 128 -cache 512 -job-timeout 5m
//	srvd -smoke              # in-process self-test used by `make serve-smoke`
//
// Submit work with curl (see "Service mode" in the README) or point a CLI at
// it: `srvbench -remote http://localhost:8077`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srvsim/internal/harness"
	"srvsim/internal/serve"
	"srvsim/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	par := flag.Int("parallel", harness.DefaultParallelism(), "max concurrent simulations per job (1 = serial)")
	jobWorkers := flag.Int("job-workers", 2, "jobs executed concurrently (each fans out over -parallel workers)")
	queueSize := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	cacheSize := flag.Int("cache", 256, "max cached results (LRU; negative disables the cache)")
	jobTimeout := flag.Duration("job-timeout", 0, "wall-clock budget per job, e.g. 5m (0 = unbounded)")
	journalDir := flag.String("journal", "", "directory for the durable job journal (empty = no journal; jobs do not survive restarts)")
	ckptEvery := flag.Int64("checkpoint-every", 100000, "journal a machine checkpoint every N simulated cycles per running simulation, so killed or preempted jobs resume mid-run on restart (0 = off; requires -journal)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "budget for finishing in-flight jobs on SIGTERM/SIGINT before they are cancelled")
	queueDeadline := flag.Duration("queue-deadline", 0, "shed submissions with 429 when the predicted queue wait exceeds this (0 = never shed)")
	maxInflight := flag.Int64("max-inflight-bytes", serve.DefaultMaxInflightBytes, "largest accepted request body in bytes (0 = unbounded)")
	smoke := flag.Bool("smoke", false, "run the in-process smoke test (submit, wait, assert cache hit) and exit")
	flag.Parse()

	harness.SetParallelism(*par)
	srv, err := serve.New(serve.Config{
		Workers:          *jobWorkers,
		QueueSize:        *queueSize,
		CacheSize:        *cacheSize,
		JobTimeout:       *jobTimeout,
		JournalDir:       *journalDir,
		CheckpointEvery:  *ckptEvery,
		QueueDeadline:    *queueDeadline,
		MaxInflightBytes: *maxInflight,
	})
	if err != nil {
		log.Fatalf("srvd: %v", err)
	}
	srv.Start()

	if *smoke {
		if err := runSmoke(srv); err != nil {
			fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("serve-smoke: ok")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("srvd: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("srvd: listening on %s (%s, schema v%d, %d job workers, queue %d, cache %d)",
		ln.Addr(), harness.CodeVersion, harness.SchemaVersion, *jobWorkers, *queueSize, *cacheSize)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatalf("srvd: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (submissions get 503 + Retry-After),
	// finish or cancel in-flight jobs within the budget, journal their final
	// states, then stop serving HTTP. Exit 0 either way — a drain that had to
	// cancel still left a consistent journal for the next process to replay.
	log.Printf("srvd: draining (budget %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("srvd: drain cancelled in-flight jobs: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("srvd: http shutdown: %v", err)
	}
	log.Print("srvd: drained")
}

// runSmoke exercises the full service loop against a loopback listener: the
// daemon must come up healthy, execute one small simulation, and answer the
// identical resubmission byte-identically from cache. CI runs this as
// `make serve-smoke`.
func runSmoke(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := serve.NewClient("http://" + ln.Addr().String())

	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz reports %q", h.Status)
	}

	b := workloads.All()[0]
	req := harness.Request{Mode: harness.ModeLoop, Bench: b.Name, Seed: 7}
	first, err := c.Do(ctx, req)
	if err != nil {
		return fmt.Errorf("first submission: %w", err)
	}
	if first.Loop == nil {
		return fmt.Errorf("first submission returned no loop payload")
	}
	firstBytes, err := json.Marshal(first)
	if err != nil {
		return err
	}

	st, err := c.Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("resubmission: %w", err)
	}
	if !st.Cached {
		return fmt.Errorf("resubmission was not a cache hit (job %s, state %s)", st.ID, st.State)
	}
	var second harness.Result
	if err := json.Unmarshal(st.Result, &second); err != nil {
		return err
	}
	secondBytes, err := json.Marshal(second)
	if err != nil {
		return err
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		return fmt.Errorf("cached result differs from original")
	}
	if m := srv.Registry().Lookup("serve.cache.hits"); m == nil || m.Int() != 1 {
		return fmt.Errorf("expected exactly one recorded cache hit")
	}
	return nil
}
