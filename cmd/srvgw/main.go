// srvgw is the fleet gateway: it serves the same versioned /v1 API as a
// single srvd node, but shards submissions across N nodes by their
// content-addressed CacheKey on a consistent-hash ring. Health polls eject
// and readmit nodes (riding the serve client's circuit breaker), a
// gateway-tier LRU answers repeats without a hop, work-stealing reroutes
// around overloaded shards, and jobs on a draining node are handed off to
// the next ring owner instead of failing.
//
// Usage:
//
//	srvgw -addr :8070 -nodes http://h1:8077,http://h2:8077,http://h3:8077
//	srvgw -addr :8070 -nodes ... -steal-threshold 2s -health-interval 1s
//	srvgw -smoke     # in-process 3-node fleet drill used by `make fleet-smoke`
//
// Point any srvd client at it unchanged: `srvbench -remote http://gw:8070`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"srvsim/internal/gateway"
	"srvsim/internal/harness"
	"srvsim/internal/obsv"
	"srvsim/internal/serve"
	"srvsim/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	nodesFlag := flag.String("nodes", "", "comma-separated srvd base URLs forming the fleet")
	cacheSize := flag.Int("cache", 256, "max gateway-tier cached results (LRU; negative disables)")
	stealThreshold := flag.Duration("steal-threshold", gateway.DefaultStealThreshold,
		"steal work from a shard owner whose predicted queue wait exceeds this (negative disables)")
	healthInterval := flag.Duration("health-interval", gateway.DefaultHealthInterval,
		"node health poll period (drives ejection, stealing and drain rescue)")
	maxInflight := flag.Int64("max-inflight-bytes", serve.DefaultMaxInflightBytes,
		"largest accepted request body in bytes (0 = unbounded)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0,
		"bound the gateway-tier cache by total payload bytes (0 = default 256MiB, negative = entry count only)")
	handoffBudget := flag.Int("handoff-budget", 0,
		"max extra ring owners tried per submission beyond the shard owner (0 = default 3, negative = owner only)")
	tenantRate := flag.Float64("tenant-rate", 0, "uniform per-tenant submissions/sec quota enforced at the edge (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "uniform per-tenant submission burst absorbed on top of -tenant-rate")
	tenantBytes := flag.Int64("tenant-inflight-bytes", 0, "uniform per-tenant cap on admitted-but-unfinished body bytes (0 = unlimited)")
	tenantOverrides := map[string]serve.TenantLimits{}
	flag.Func("tenant", "per-tenant quota override, repeatable: name:weight=4,rate=2,burst=8,bytes=1048576 (name \"default\" = requests without "+serve.HeaderTenant+")", func(spec string) error {
		name, l, err := serve.ParseTenantOverride(spec)
		if err != nil {
			return err
		}
		tenantOverrides[name] = l
		return nil
	})
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log line format: text|json")
	smoke := flag.Bool("smoke", false, "run the in-process fleet smoke drill (3 nodes, drain one mid-queue, assert zero lost jobs and byte-identical results) and exit")
	tenantSmoke := flag.Bool("tenant-smoke", false, "run the in-process multi-tenant isolation drill (2 nodes, flooding vs interactive tenant, quota refusals, brownout) and exit")
	flag.Parse()

	if *smoke {
		if err := runFleetSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "fleet-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("fleet-smoke: ok")
		return
	}
	if *tenantSmoke {
		if err := runTenantSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "tenant-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("tenant-smoke: ok")
		return
	}

	logger, err := buildLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srvgw:", err)
		os.Exit(1)
	}
	var nodes []string
	for _, n := range strings.Split(*nodesFlag, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	gw, err := gateway.New(gateway.Config{
		Nodes:            nodes,
		CacheSize:        *cacheSize,
		CacheMaxBytes:    *cacheMaxBytes,
		StealThreshold:   *stealThreshold,
		HealthInterval:   *healthInterval,
		MaxInflightBytes: *maxInflight,
		HandoffBudget:    *handoffBudget,
		TenantQuota: serve.TenantLimits{
			SubmitRate:       *tenantRate,
			SubmitBurst:      *tenantBurst,
			MaxInflightBytes: *tenantBytes,
		},
		TenantQuotas: tenantOverrides,
		Logger:       logger,
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	gw.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: gw.Handler()}
	logger.Info("listening", "addr", ln.Addr().String(), "nodes", strings.Join(nodes, ","),
		"version", harness.CodeVersion, "schema", harness.SchemaVersion)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		logger.Error("fatal", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("signal received, shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = hs.Shutdown(sctx)
	_ = gw.Shutdown(sctx)
	logger.Info("stopped")
}

// buildLogger mirrors srvd's flag handling.
func buildLogger(w *os.File, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

// fleetNode is one in-process srvd node of the smoke drill.
type fleetNode struct {
	srv *serve.Server
	hs  *http.Server
	ln  net.Listener
	url string
}

// runFleetSmoke is the acceptance drill behind `make fleet-smoke`: bring up
// a 3-node in-process fleet behind a gateway, submit a mixed queue of jobs,
// drain one node mid-queue (the SIGTERM path), and assert that (a) every
// job completes — the drained node's work is handed off, none lost — and
// (b) every result is byte-identical to local execution, and (c) a traced
// job's spans all share one TraceID across client, gateway and node.
func runFleetSmoke() error {
	const nNodes = 3
	var nodes []*fleetNode
	defer func() {
		for _, n := range nodes {
			n.hs.Close()
		}
	}()
	for i := 0; i < nNodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv, err := serve.New(serve.Config{NodeID: fmt.Sprintf("node-%d", i), Workers: 1})
		if err != nil {
			return err
		}
		srv.Start()
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		nodes = append(nodes, &fleetNode{srv: srv, hs: hs, ln: ln, url: "http://" + ln.Addr().String()})
	}
	var urls []string
	for _, n := range nodes {
		urls = append(urls, n.url)
	}
	gw, err := gateway.New(gateway.Config{
		Nodes:          urls,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	gw.Start()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = gw.Shutdown(sctx)
	}()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ghs := &http.Server{Handler: gw.Handler()}
	go func() { _ = ghs.Serve(gln) }()
	defer ghs.Close()
	base := "http://" + gln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rec := obsv.NewSpanRecorder(0)
	c := serve.NewClient(base, serve.WithSpanRecorder(rec))

	// A spread of requests large enough that every node owns some shard.
	b := workloads.All()[0]
	reqs := make([]harness.Request, 12)
	for i := range reqs {
		reqs[i] = harness.Request{
			Mode: harness.ModeLoop, Bench: b.Name, Seed: int64(1000 + i),
			Loop: &workloads.LoopSpec{Weight: 1, Shape: workloads.Shape{
				Name: b.Name, Trip: 1 << 11, Contig: 1, Chain: 1,
				Pattern: workloads.PatIdentity, ReadSelf: true, StoreVia: true,
			}},
		}
	}

	// Submit everything asynchronously, then drain one node mid-queue.
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		st, err := c.Submit(ctx, req)
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		if !strings.HasPrefix(st.ID, "gw-") {
			return fmt.Errorf("submit %d: gateway did not issue its own job ID (got %q)", i, st.ID)
		}
		ids[i] = st.ID
	}
	// Drain node 0 the way SIGTERM would: stop admitting, hand queued work
	// back via 503, finish in-flight. The gateway must rescue its jobs.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	go func() {
		defer dcancel()
		_ = nodes[0].srv.Drain(dctx)
		nodes[0].hs.Close()
	}()

	// Every job must reach done — the drained node's queue included.
	results := make([][]byte, len(reqs))
	for i, id := range ids {
		deadline := time.Now().Add(3 * time.Minute)
		for {
			st, err := c.Status(ctx, id)
			if err != nil {
				return fmt.Errorf("status %s: %w", id, err)
			}
			if st.State == serve.StateFailed {
				return fmt.Errorf("job %s failed: %s", id, st.Error)
			}
			if st.State == serve.StateDone {
				results[i] = st.Result
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s still %s after drain hand-off window", id, st.State)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Byte-identity: remote results equal local execution exactly.
	for i, req := range reqs {
		local, err := harness.Run(ctx, req)
		if err != nil {
			return err
		}
		want, err := json.Marshal(local)
		if err != nil {
			return err
		}
		var got harness.Result
		if err := json.Unmarshal(results[i], &got); err != nil {
			return fmt.Errorf("result %d: %w", i, err)
		}
		gotBytes, err := json.Marshal(got)
		if err != nil {
			return err
		}
		if !bytes.Equal(gotBytes, want) {
			return fmt.Errorf("request %d diverged through the fleet:\n  %s\n  %s", i, gotBytes, want)
		}
	}

	// Gateway cache tier: resubmitting is a gateway-side hit.
	st, err := c.Submit(ctx, reqs[1])
	if err != nil {
		return fmt.Errorf("resubmission: %w", err)
	}
	if !st.Cached {
		return fmt.Errorf("resubmission was not a cache hit (state %s)", st.State)
	}

	// One trace end to end: the client span and the gateway's spans for a
	// fresh traced job share a single TraceID.
	fresh := harness.Request{Mode: harness.ModeLoop, Bench: b.Name, Seed: 424242}
	if _, err := c.Do(ctx, fresh); err != nil {
		return fmt.Errorf("traced job: %w", err)
	}
	client := rec.Snapshot()
	if len(client) == 0 {
		return fmt.Errorf("client recorded no spans")
	}
	trace := client[len(client)-1].Trace
	found := false
	for _, sp := range gw.Spans().Snapshot() {
		if sp.Trace == trace && sp.Name == "gateway.route" {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("gateway recorded no route span under the client's trace %s", trace)
	}

	// The drill must actually have exercised hand-off on the drained node's
	// shards, unless the ring sent node 0 nothing (possible but unlikely
	// with 13 keys; rescued+handoffs can then legitimately be zero).
	if v := gw.Registry().Lookup("gateway.jobs_submitted"); v == nil || v.Int() == 0 {
		return fmt.Errorf("gateway forwarded no jobs")
	}
	return nil
}
