package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"srvsim/internal/gateway"
	"srvsim/internal/harness"
	"srvsim/internal/serve"
	"srvsim/internal/workloads"
)

// runTenantSmoke is the acceptance drill behind `make tenant-smoke`: an
// in-process 2-node fleet with per-tenant fair queueing and quotas, where a
// flooding tenant and an interactive tenant share the fleet. It asserts:
//
//   - isolation: the weight-4 interactive tenant's jobs complete while the
//     weight-1 flood tenant still has a backlog queued — no starvation;
//   - quotas: a rate-limited tenant's over-quota submissions are refused
//     with 429 over_capacity carrying a millisecond-granular retry_after_ms
//     (not the coarse Retry-After header rounding);
//   - brownout: an overloaded node reports its degradation step in
//     /v1/healthz, the gateway aggregates it, fresh work is refused while
//     cached results are still served;
//   - zero lost jobs: every accepted submission reaches done;
//   - determinism: interactive results are byte-identical to local execution.
func runTenantSmoke() error {
	// Single-threaded sims: the drill's point is queue contention, not CPU
	// saturation — full fan-out would starve the control plane (health
	// polls, status reads) of cores and read as node failure.
	harness.SetParallelism(1)
	if err := tenantIsolationDrill(); err != nil {
		return fmt.Errorf("isolation: %w", err)
	}
	if err := tenantBrownoutDrill(); err != nil {
		return fmt.Errorf("brownout: %w", err)
	}
	return nil
}

// smokeFleet is an in-process gateway over n nodes, torn down by close().
type smokeFleet struct {
	nodes    []*fleetNode
	nodeURLs []string
	gw       *gateway.Gateway
	ghs      *http.Server
	base     string
	closers  []func()
}

func (f *smokeFleet) close() {
	for i := len(f.closers) - 1; i >= 0; i-- {
		f.closers[i]()
	}
}

func startSmokeFleet(n int, nodeCfg func(i int) serve.Config, gwCfg func(urls []string) gateway.Config) (*smokeFleet, error) {
	f := &smokeFleet{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		srv, err := serve.New(nodeCfg(i))
		if err != nil {
			f.close()
			return nil, err
		}
		srv.Start()
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		f.closers = append(f.closers, func() { hs.Close() })
		node := &fleetNode{srv: srv, hs: hs, ln: ln, url: "http://" + ln.Addr().String()}
		f.nodes = append(f.nodes, node)
		f.nodeURLs = append(f.nodeURLs, node.url)
	}
	gw, err := gateway.New(gwCfg(f.nodeURLs))
	if err != nil {
		f.close()
		return nil, err
	}
	gw.Start()
	f.gw = gw
	f.closers = append(f.closers, func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = gw.Shutdown(sctx)
	})
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.close()
		return nil, err
	}
	f.ghs = &http.Server{Handler: gw.Handler()}
	go func() { _ = f.ghs.Serve(gln) }()
	f.closers = append(f.closers, func() { f.ghs.Close() })
	f.base = "http://" + gln.Addr().String()
	return f, nil
}

// waitDone polls a job to a terminal state and returns its result bytes.
func waitDone(ctx context.Context, c *serve.Client, id string, budget time.Duration) ([]byte, error) {
	deadline := time.Now().Add(budget)
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("status %s: %w", id, err)
		}
		switch st.State {
		case serve.StateDone:
			return st.Result, nil
		case serve.StateFailed:
			return nil, fmt.Errorf("job %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after %s", id, st.State, budget)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// tenantIsolationDrill: a 40-job flood from a weight-1 tenant must not
// starve a weight-4 interactive tenant, a rate-quota'd tenant must be
// refused honestly, and every accepted job must finish.
func tenantIsolationDrill() error {
	f, err := startSmokeFleet(2,
		func(i int) serve.Config {
			return serve.Config{
				NodeID:    fmt.Sprintf("node-%d", i),
				Workers:   1,
				QueueSize: 256,
				// The interactive tenant gets a 4× DRR share; everyone
				// else (flood included) keeps the default weight 1.
				TenantQuotas: map[string]serve.TenantLimits{
					"interactive": {Weight: 4},
				},
			}
		},
		func(urls []string) gateway.Config {
			return gateway.Config{
				Nodes:          urls,
				HealthInterval: 250 * time.Millisecond,
				// The greedy tenant may land 2 submissions back-to-back,
				// then one every 4s — the drill's concurrent burst of 6
				// must trip this no matter how slowly the runner schedules.
				TenantQuotas: map[string]serve.TenantLimits{
					"greedy": {SubmitRate: 0.25, SubmitBurst: 2},
				},
			}
		})
	if err != nil {
		return err
	}
	defer f.close()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	c := serve.NewClient(f.base, serve.WithRetry(serve.RetryPolicy{MaxAttempts: 1}))
	b := workloads.All()[0]

	// Flood: 40 moderately sized jobs from the weight-1 tenant.
	var floodIDs []string
	for i := 0; i < 40; i++ {
		req := harness.Request{
			Mode: harness.ModeLoop, Bench: b.Name, Seed: int64(5000 + i), Tenant: "flood",
			Loop: &workloads.LoopSpec{Weight: 1, Shape: workloads.Shape{
				Name: b.Name, Trip: 1 << 18, Contig: 1, Chain: 1,
				Pattern: workloads.PatIdentity, ReadSelf: true, StoreVia: true,
			}},
		}
		st, err := c.Submit(ctx, req)
		if err != nil {
			return fmt.Errorf("flood submit %d: %w", i, err)
		}
		floodIDs = append(floodIDs, st.ID)
	}

	// Greedy: 6 concurrent submissions against a burst-2 rate quota. The
	// bucket holds 2 tokens and refills one every 4 seconds, so at least 4
	// must be refused 429 over_capacity — and every refusal must carry an
	// honest retry hint (the envelope's retry_after_ms, bounded by the time
	// one whole token takes to refill).
	greedyStatus := make([]serve.JobStatus, 6)
	greedyErrs := make([]error, 6)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := harness.Request{Mode: harness.ModeLoop, Bench: b.Name, Seed: int64(7000 + i), Tenant: "greedy"}
			st, err := c.Submit(ctx, req)
			greedyStatus[i], greedyErrs[i] = st, err
		}(i)
	}
	wg.Wait()
	var greedyIDs []string
	refused := 0
	for i := 0; i < 6; i++ {
		if greedyErrs[i] == nil {
			greedyIDs = append(greedyIDs, greedyStatus[i].ID)
			continue
		}
		var he *serve.HTTPError
		if !errors.As(greedyErrs[i], &he) || he.Status != http.StatusTooManyRequests {
			return fmt.Errorf("greedy submit %d: want 429, got %v", i, greedyErrs[i])
		}
		if he.Code != serve.CodeOverCapacity {
			return fmt.Errorf("greedy refusal carries code %q, want %q", he.Code, serve.CodeOverCapacity)
		}
		if he.RetryAfter <= 0 || he.RetryAfter > 5*time.Second {
			return fmt.Errorf("greedy refusal retry hint = %s, want honest (0, 4s] envelope hint", he.RetryAfter)
		}
		refused++
	}
	if refused == 0 {
		return fmt.Errorf("6 concurrent submissions against a burst-2 quota produced no refusals")
	}

	// Interactive: 3 small jobs submitted behind the flood must complete
	// while the flood still has work queued — the starvation-freedom check.
	interactive := make([]harness.Request, 3)
	results := make([][]byte, len(interactive))
	for i := range interactive {
		interactive[i] = harness.Request{Mode: harness.ModeLoop, Bench: b.Name, Seed: int64(9000 + i), Tenant: "interactive"}
		st, err := c.Submit(ctx, interactive[i])
		if err != nil {
			return fmt.Errorf("interactive submit %d: %w", i, err)
		}
		if results[i], err = waitDone(ctx, c, st.ID, 30*time.Second); err != nil {
			return fmt.Errorf("interactive job %d: %w", i, err)
		}
	}
	backlog := 0
	for _, url := range f.nodeURLs {
		h, err := serve.NewClient(url).Health(ctx)
		if err != nil {
			return fmt.Errorf("node healthz: %w", err)
		}
		for _, t := range h.Tenants {
			if t.Tenant == "flood" {
				backlog += t.Queued
			}
		}
	}
	if backlog == 0 {
		return fmt.Errorf("interactive tenant finished only after the flood backlog drained — no isolation demonstrated")
	}

	// Determinism: interactive results are byte-identical to local runs.
	for i, req := range interactive {
		local, err := harness.Run(ctx, req)
		if err != nil {
			return err
		}
		want, err := json.Marshal(local)
		if err != nil {
			return err
		}
		var got harness.Result
		if err := json.Unmarshal(results[i], &got); err != nil {
			return fmt.Errorf("interactive result %d: %w", i, err)
		}
		gotBytes, err := json.Marshal(got)
		if err != nil {
			return err
		}
		if !bytes.Equal(gotBytes, want) {
			return fmt.Errorf("interactive request %d diverged through the fleet", i)
		}
	}

	// Zero lost jobs: every accepted flood and greedy submission finishes.
	for _, id := range append(floodIDs, greedyIDs...) {
		if _, err := waitDone(ctx, c, id, 2*time.Minute); err != nil {
			return err
		}
	}
	return nil
}

// tenantBrownoutDrill: a saturated node with a 1ms brownout high-water must
// report its degradation step, the gateway must surface the fleet minimum,
// fresh work must be refused while the step holds, and cached results must
// still be served.
func tenantBrownoutDrill() error {
	f, err := startSmokeFleet(1,
		func(i int) serve.Config {
			return serve.Config{
				NodeID:            "brown-0",
				Workers:           1,
				BrownoutHighWater: time.Millisecond,
				// A vip override raises the max configured weight, so the
				// default tenant sheds first at step 1.
				TenantQuotas: map[string]serve.TenantLimits{"vip": {Weight: 4}},
			}
		},
		func(urls []string) gateway.Config {
			return gateway.Config{Nodes: urls, HealthInterval: 100 * time.Millisecond}
		})
	if err != nil {
		return err
	}
	defer f.close()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	c := serve.NewClient(f.base, serve.WithRetry(serve.RetryPolicy{MaxAttempts: 1}))
	node := serve.NewClient(f.nodeURLs[0], serve.WithRetry(serve.RetryPolicy{MaxAttempts: 1}))
	b := workloads.All()[0]
	slowShape := &workloads.LoopSpec{Weight: 1, Shape: workloads.Shape{
		Name: b.Name, Trip: 1 << 19, Contig: 1, Chain: 1,
		Pattern: workloads.PatIdentity, ReadSelf: true, StoreVia: true,
	}}

	// Warm-up: one completed job seeds the service-time EWMA (and the
	// caches) so the queue-wait prediction has a basis.
	warm := harness.Request{Mode: harness.ModeLoop, Bench: b.Name, Seed: 31337, Tenant: "vip", Loop: slowShape}
	wst, err := c.Submit(ctx, warm)
	if err != nil {
		return fmt.Errorf("warm-up submit: %w", err)
	}
	if _, err := waitDone(ctx, c, wst.ID, time.Minute); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}

	// Saturate: job A occupies the single worker, job B queues behind it.
	// With a slow EWMA on record and one queued job, the predicted wait
	// blows through 4× the 1ms high-water — step 3, cached-only.
	reqA := warm
	reqA.Seed = 31338
	stA, err := c.Submit(ctx, reqA)
	if err != nil {
		return fmt.Errorf("saturate A: %w", err)
	}
	for { // wait for A to leave the queue and occupy the worker
		st, err := c.Status(ctx, stA.ID)
		if err != nil {
			return err
		}
		if st.State != serve.StateQueued {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	reqB := warm
	reqB.Seed = 31339
	stB, err := c.Submit(ctx, reqB)
	if err != nil {
		return fmt.Errorf("saturate B: %w", err)
	}

	// The node must self-report a brownout step while B is queued.
	h, err := node.Health(ctx)
	if err != nil {
		return fmt.Errorf("node healthz: %w", err)
	}
	if h.Brownout == "" {
		return fmt.Errorf("saturated node reports no brownout step (predicted_wait_ms=%v)", h.PredictedWaitMS)
	}

	// The gateway aggregates the fleet minimum after its next health poll.
	gwSaw := ""
	for wait := time.Now().Add(2 * time.Second); time.Now().Before(wait); {
		gh, err := c.Health(ctx)
		if err != nil {
			return fmt.Errorf("gateway healthz: %w", err)
		}
		if gh.Brownout != "" {
			gwSaw = gh.Brownout
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if gwSaw == "" {
		return fmt.Errorf("gateway healthz never surfaced the node's brownout step")
	}

	// Fresh non-cached work from the default tenant is refused while the
	// step holds; the refusal is the standard over_capacity envelope.
	fresh := harness.Request{Mode: harness.ModeLoop, Bench: b.Name, Seed: 31340}
	if _, err := c.Submit(ctx, fresh); err == nil {
		return fmt.Errorf("brownout node accepted fresh work")
	} else {
		var he *serve.HTTPError
		if !errors.As(err, &he) || he.Status != http.StatusTooManyRequests || he.Code != serve.CodeOverCapacity {
			return fmt.Errorf("brownout refusal: want 429 %s, got %v", serve.CodeOverCapacity, err)
		}
	}

	// Cached results are still served at every step.
	cst, err := c.Submit(ctx, warm)
	if err != nil {
		return fmt.Errorf("cached submit during brownout: %w", err)
	}
	if !cst.Cached {
		return fmt.Errorf("cached resubmission during brownout was not served from cache (state %s)", cst.State)
	}

	// Zero lost jobs: both saturation jobs still finish once the backlog
	// clears, and the step reads 0 again afterwards.
	for _, id := range []string{stA.ID, stB.ID} {
		if _, err := waitDone(ctx, c, id, 2*time.Minute); err != nil {
			return err
		}
	}
	h, err = node.Health(ctx)
	if err != nil {
		return err
	}
	if h.Brownout != "" {
		return fmt.Errorf("brownout step %q persists after the queue drained", h.Brownout)
	}
	return nil
}
