// benchgate compares a fresh harness timing report against a committed
// baseline and fails (exit 1) on a simulated-cycle regression.
//
// Usage:
//
//	benchgate BENCH_baseline.json fresh.json
//	benchgate -threshold 1.05 base.json fresh.json
//
// The gate is on simulated cycles (deterministic for a fixed seed), never on
// wall-clock; see `make bench-gate` for the end-to-end workflow.
package main

import (
	"flag"
	"fmt"
	"os"

	"srvsim/internal/harness"
)

func main() {
	threshold := flag.Float64("threshold", harness.DefaultGateThreshold,
		"fail when the geomean fresh/base cycle ratio exceeds this")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold 1.10] baseline.json fresh.json")
		os.Exit(2)
	}
	base, err := harness.LoadTimings(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fresh, err := harness.LoadTimings(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	// A baseline written by an older build (or before reports carried a
	// schema_version at all) is still comparable — the gate is on simulated
	// cycles — but flag it so a stale baseline is visible in CI logs.
	if base.SchemaVersion < harness.SchemaVersion {
		fmt.Fprintf(os.Stderr,
			"benchgate: warning: baseline %s has schema_version %d (current %d); consider refreshing it\n",
			flag.Arg(0), base.SchemaVersion, harness.SchemaVersion)
	}
	// Simulated cycles are scheduler-independent (the equivalence suite holds
	// the cores bit-identical), so the gate itself is unaffected — but a
	// core mismatch makes the wall-clock context columns meaningless, and
	// usually means one of the reports was generated with a non-default
	// -tick-core invocation.
	if base.RefTickCore != fresh.RefTickCore {
		coreName := func(tick bool) string {
			if tick {
				return "reference tick core"
			}
			return "event-driven core"
		}
		fmt.Fprintf(os.Stderr,
			"benchgate: warning: baseline %s was produced on the %s but fresh %s on the %s; wall-clock comparisons are not meaningful\n",
			flag.Arg(0), coreName(base.RefTickCore), flag.Arg(1), coreName(fresh.RefTickCore))
	}
	g := harness.Gate(base, fresh, *threshold)
	fmt.Print(g)
	if !g.Pass {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
