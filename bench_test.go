package srvsim_test

import (
	"testing"

	"srvsim/internal/compiler"
	"srvsim/internal/harness"
	"srvsim/internal/pipeline"
	"srvsim/internal/stats"
	"srvsim/internal/workloads"
)

// The benchmarks below regenerate the paper's tables and figures; each
// reports its headline numbers as custom metrics so `go test -bench=.`
// doubles as the experiment log (cmd/srvbench prints the full tables).
// Timing per op is the cost of regenerating the experiment, not a paper
// metric.

const benchSeed = 7

// measure caches the expensive full-suite measurement across benchmarks.
var measured *harness.Results

func measureOnce(b *testing.B) harness.Results {
	b.Helper()
	if measured == nil {
		rs, err := harness.Measure(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		measured = &rs
	}
	return *measured
}

// BenchmarkTable1Config exercises the Table I configuration: one listing-1
// style loop through the default pipeline.
func BenchmarkTable1Config(b *testing.B) {
	bm, _ := workloads.ByName("bzip2")
	for i := 0; i < b.N; i++ {
		lr, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(lr.SRVCycles), "srv-cycles")
	}
	cfg := pipeline.DefaultConfig()
	b.ReportMetric(float64(cfg.ROBSize), "rob-entries")
	b.ReportMetric(float64(cfg.LSQSize), "lsu-entries")
}

// BenchmarkLimitStudy regenerates the §II motivation numbers (paper: 2.1x
// potential, 1.02x without unknown-dependence loops, >70% unknown).
func BenchmarkLimitStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var all, safe, unk []float64
		for _, bm := range workloads.All() {
			s := harness.RunLimit(bm, benchSeed)
			all = append(all, s.PotentialAll)
			safe = append(safe, s.PotentialSafeOnly)
			unk = append(unk, s.UnknownFrac)
		}
		b.ReportMetric(stats.Mean(all), "potential-x")
		b.ReportMetric(stats.Mean(safe), "safe-only-x")
		b.ReportMetric(stats.Mean(unk)*100, "unknown-%")
	}
}

// BenchmarkFig6PerLoopSpeedup regenerates Fig 6 (paper: average 2.9x, max
// 5.3x on is).
func BenchmarkFig6PerLoopSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := measureOnce(b)
		var sps []float64
		for _, br := range rs.Bench {
			sps = append(sps, br.Speedup)
		}
		b.ReportMetric(stats.Mean(sps), "avg-speedup-x")
		b.ReportMetric(stats.Max(sps), "max-speedup-x")
	}
}

// BenchmarkFig7WholeProgram regenerates Fig 7 (paper: geomean 1.05x, max
// 1.26x on is).
func BenchmarkFig7WholeProgram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := measureOnce(b)
		var all []float64
		for _, br := range rs.Bench {
			all = append(all, br.Whole)
		}
		b.ReportMetric(stats.Geomean(all), "geomean-x")
		b.ReportMetric(stats.Max(all), "max-x")
	}
}

// BenchmarkFig8BarrierCycles regenerates Fig 8 (paper: mostly < 4%, worst
// ~8% for short-trip loops).
func BenchmarkFig8BarrierCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := measureOnce(b)
		var fr []float64
		for _, br := range rs.Bench {
			fr = append(fr, br.Barrier*100)
		}
		b.ReportMetric(stats.Mean(fr), "avg-barrier-%")
		b.ReportMetric(stats.Max(fr), "max-barrier-%")
	}
}

// BenchmarkFig9Violations regenerates Fig 9 (paper: 4 benchmarks incur
// violations; replay overhead < 1% of vector iterations).
func BenchmarkFig9Violations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := measureOnce(b)
		viol := 0
		var worstReplay float64
		for _, br := range rs.Bench {
			var raw, replays, iters int64
			for _, lr := range br.Loops {
				raw += lr.RAW
				replays += lr.ReplayRounds
				iters += lr.VectorIters
			}
			if raw > 0 {
				viol++
			}
			if iters > 0 {
				if f := float64(replays) / float64(iters) * 100; f > worstReplay {
					worstReplay = f
				}
			}
		}
		b.ReportMetric(float64(viol), "benches-with-violations")
		b.ReportMetric(worstReplay, "worst-replay-%")
	}
}

// BenchmarkFig10MemAccessHistogram regenerates Fig 10 (paper: ~80% of loops
// have <= 10 accesses; <= 3 gather/scatters in those; a few > 16).
func BenchmarkFig10MemAccessHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := stats.NewHistogram()
		for _, bm := range workloads.All() {
			for _, ls := range bm.Loops {
				total, _ := ls.Shape.Build().MemAccessCount()
				h.Add(total)
			}
		}
		b.ReportMetric(h.CumulativeAtMost(10)*100, "loops<=10acc-%")
		b.ReportMetric(float64(h.Total()), "loops")
	}
}

// BenchmarkFig11Disambiguations regenerates Fig 11 (paper: SRV adds up to
// 60% more address disambiguations; some benchmarks need fewer).
func BenchmarkFig11Disambiguations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := measureOnce(b)
		var worst, best float64 = 0, 1e9
		for _, br := range rs.Bench {
			var sv, vv, vh int64
			for _, lr := range br.Loops {
				sv += lr.SeqVertDisamb
				vv += lr.SRVVertDisamb
				vh += lr.SRVHorizDisamb
			}
			if sv == 0 {
				continue
			}
			r := float64(vv+vh) / float64(sv)
			if r > worst {
				worst = r
			}
			if r < best {
				best = r
			}
		}
		b.ReportMetric(worst, "max-ratio")
		b.ReportMetric(best, "min-ratio")
	}
}

// BenchmarkFig12Power regenerates Fig 12 (paper: <= +3.2% core power; some
// benchmarks negative).
func BenchmarkFig12Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := measureOnce(b)
		rep := harness.Fig12(rs)
		b.ReportMetric(float64(len(rep.Body)), "report-bytes")
	}
}

// BenchmarkFig13FlexVec regenerates Fig 13 (paper: SRV needs < 60% of
// FlexVec's dynamic instructions for most benchmarks).
func BenchmarkFig13FlexVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, bm := range workloads.All() {
			_, ratio, err := harness.RunFlexVec(bm, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			ratios = append(ratios, ratio)
		}
		b.ReportMetric(stats.Mean(ratios), "srv/flexvec")
	}
}

// BenchmarkStructuralSweep regenerates the width/IQ/LSQ sensitivity report
// (`srvbench -exp sweep`), reporting the headline deltas: the scalar
// slowdown from halving the IQ and the fallback cliff of a 24-entry LSQ.
func BenchmarkStructuralSweep(b *testing.B) {
	bm, _ := workloads.ByName("is")
	for i := 0; i < b.N; i++ {
		base, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		iq16 := pipeline.DefaultConfig()
		iq16.IQSize = 16
		small, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed, harness.WithConfig(iq16))
		if err != nil {
			b.Fatal(err)
		}
		lsq24 := pipeline.DefaultConfig()
		lsq24.LSQSize = 24
		cliff, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed, harness.WithConfig(lsq24))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(small.ScalarCycles)/float64(base.ScalarCycles), "iq16-scalar-slowdown-x")
		b.ReportMetric(cliff.Speedup, "lsq24-speedup-x")
		b.ReportMetric(base.Speedup, "tableI-speedup-x")
	}
}

// BenchmarkPipelineScalarIPC is a micro-benchmark of the simulator itself:
// simulated scalar instructions per host-second.
func BenchmarkPipelineScalarIPC(b *testing.B) {
	bm, _ := workloads.ByName("gcc")
	l, im := bm.Loops[0].Instantiate(benchSeed)
	c, err := compiler.Compile(l, im, compiler.ModeScalar)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pipeline.New(pipeline.DefaultConfig(), c.Prog, im.Clone())
		if err := p.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.Stats.IPC(), "sim-ipc")
	}
}

// BenchmarkWholeProgramDirect validates Fig 7's methodology by direct
// simulation: a synthetic application (scalar phases + the benchmark's SRV
// loop at its published coverage) measured end to end vs the Amdahl
// estimate used by the paper.
func BenchmarkWholeProgramDirect(b *testing.B) {
	bm, _ := workloads.ByName("is")
	for i := 0; i < b.N; i++ {
		r, err := harness.RunWholeProgram(bm, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Direct, "direct-x")
		b.ReportMetric(r.AmdahlInst, "amdahl-inst-x")
		b.ReportMetric(r.AmdahlCycle, "amdahl-cycle-x")
	}
}

// BenchmarkAblationRelaxedBarrier quantifies the paper's future-work item
// ("removing the serialisation barrier in SRV-end"): SRV cycles with the
// strict barrier vs a relaxed one that lets younger non-memory work issue
// past a pending srv_end.
func BenchmarkAblationRelaxedBarrier(b *testing.B) {
	bm, _ := workloads.ByName("is")
	for i := 0; i < b.N; i++ {
		strict, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		cfg := pipeline.DefaultConfig()
		cfg.RelaxedBarrier = true
		relaxed, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed, harness.WithConfig(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(strict.SRVCycles)/float64(relaxed.SRVCycles), "relaxed-speedup-x")
	}
}

// BenchmarkAblationConservativeMem quantifies the store-set predictor's
// value on the scalar baseline: conservative vs aggressive scalar cycles.
func BenchmarkAblationConservativeMem(b *testing.B) {
	bm, _ := workloads.ByName("bzip2")
	for i := 0; i < b.N; i++ {
		agg, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		cfg := pipeline.DefaultConfig()
		cfg.ConservativeMem = true
		cons, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed, harness.WithConfig(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cons.ScalarCycles)/float64(agg.ScalarCycles), "conservative-slowdown-x")
	}
}

// BenchmarkAblationPredicatedTail compares the scalar epilogue against
// SVE-style tail predication on a short-trip kernel where the remainder is
// a large fraction of the work — the "small loops with short trip counts"
// class Fig 8 calls out.
func BenchmarkAblationPredicatedTail(b *testing.B) {
	shape := workloads.Shape{
		Name: "shorttrip", Trip: 57, // 3 full groups + 9 remainder
		Contig: 4, Chain: 4, Pattern: workloads.PatIdentity,
		ReadSelf: true, StoreVia: true,
	}
	for i := 0; i < b.N; i++ {
		epi, err := harness.RunLoop("tail", workloads.LoopSpec{Weight: 1, Shape: shape}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		pt := shape
		spec := workloads.LoopSpec{Weight: 1, Shape: pt}
		spec.PredTail = true
		tail, err := harness.RunLoop("tail", spec, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(epi.Speedup, "scalar-epilogue-x")
		b.ReportMetric(tail.Speedup, "predicated-tail-x")
		b.ReportMetric(float64(epi.SRVCycles)/float64(tail.SRVCycles), "tail-gain-x")
	}
}

// BenchmarkAblationSelectiveReplay quantifies the paper's headline
// mechanism: with selective replay disabled, every violating region must be
// re-executed sequentially (one lane per pass), so conflict-bearing loops
// collapse toward scalar speed while conflict-free loops are untouched.
func BenchmarkAblationSelectiveReplay(b *testing.B) {
	conflicting, _ := workloads.ByName("is") // violations at run time
	clean, _ := workloads.ByName("gcc")      // unknown deps, never violate
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		cfg.NoSelectiveReplay = true

		with, err := harness.RunLoop(conflicting.Name, conflicting.Loops[0], benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		without, err := harness.RunLoop(conflicting.Name, conflicting.Loops[0], benchSeed, harness.WithConfig(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with.Speedup, "selective-speedup-x")
		b.ReportMetric(without.Speedup, "fallback-speedup-x")
		b.ReportMetric(float64(without.SRVCycles)/float64(with.SRVCycles), "replay-gain-x")

		cleanAbl, err := harness.RunLoop(clean.Name, clean.Loops[0], benchSeed, harness.WithConfig(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cleanAbl.Speedup, "clean-loop-speedup-x")

		// A high-conflict kernel (the paper's listing-1 pattern: every
		// region replays lanes {3,7,11,15}) shows the real gap — rare-
		// conflict suite loops mask it.
		hot := workloads.LoopSpec{Weight: 1, Shape: workloads.Shape{
			Name: "hot", Trip: 1024, Contig: 4, Chain: 4,
			Pattern: workloads.PatPeriodic4, ReadSelf: true, StoreVia: true,
		}}
		hotWith, err := harness.RunLoop("hot", hot, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		hotWithout, err := harness.RunLoop("hot", hot, benchSeed, harness.WithConfig(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(hotWith.Speedup, "hot-selective-x")
		b.ReportMetric(hotWithout.Speedup, "hot-fallback-x")
	}
}

// BenchmarkAblationPrefetcher measures the next-line prefetcher's effect on
// a footprint-bound loop (milc streams past the L1): SRV's contiguous
// group accesses prefetch well, so the gap to scalar narrows or widens
// depending on who was more latency-bound.
func BenchmarkAblationPrefetcher(b *testing.B) {
	bm, _ := workloads.ByName("milc")
	for i := 0; i < b.N; i++ {
		off, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		cfg := pipeline.DefaultConfig()
		cfg.Prefetch = true
		on, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed, harness.WithConfig(cfg))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(on.Speedup, "prefetch-speedup-x")
		b.ReportMetric(off.Speedup, "noprefetch-speedup-x")
		b.ReportMetric(float64(off.SRVCycles)/float64(on.SRVCycles), "srv-gain-x")
	}
}

// BenchmarkAblationLSQSweep measures how shrinking the LSU trades region
// capacity against sequential fallbacks (paper §III-D7).
func BenchmarkAblationLSQSweep(b *testing.B) {
	bm, _ := workloads.ByName("omnetpp")
	for i := 0; i < b.N; i++ {
		for _, size := range []int{64, 48, 24} {
			cfg := pipeline.DefaultConfig()
			cfg.LSQSize = size
			lr, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed, harness.WithConfig(cfg))
			if err != nil {
				b.Fatal(err)
			}
			switch size {
			case 64:
				b.ReportMetric(lr.Speedup, "lsq64-speedup-x")
			case 48:
				b.ReportMetric(lr.Speedup, "lsq48-speedup-x")
			case 24:
				b.ReportMetric(lr.Speedup, "lsq24-speedup-x")
			}
		}
	}
}

// BenchmarkAblationInOrder measures SRV on the §III-D6 in-order core: the
// relative benefit grows because the vector unit supplies the latency
// overlap the in-order scalar pipeline cannot find.
func BenchmarkAblationInOrder(b *testing.B) {
	bm, _ := workloads.ByName("gcc")
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		cfg.InOrder = true
		io, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed, harness.WithConfig(cfg))
		if err != nil {
			b.Fatal(err)
		}
		ooo, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(io.Speedup, "inorder-speedup-x")
		b.ReportMetric(ooo.Speedup, "ooo-speedup-x")
	}
}

// BenchmarkAblationSerialisationCost quantifies the srv_end barrier's cost
// (the paper's future-work item: "removing the serialisation barrier"):
// cycles per SRV region for a conflict-free loop, against the theoretical
// body-issue floor.
func BenchmarkAblationSerialisationCost(b *testing.B) {
	bm, _ := workloads.ByName("gcc")
	for i := 0; i < b.N; i++ {
		lr, err := harness.RunLoop(bm.Name, bm.Loops[0], benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		groups := float64(lr.VectorIters)
		b.ReportMetric(float64(lr.SRVCycles)/groups, "cycles-per-region")
		b.ReportMetric(float64(lr.BarrierFrac*100), "barrier-%")
	}
}
